//! Shared helpers for the figure/table regeneration harnesses.
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper:
//! it sweeps the same configurations, prints the same series, and saves a
//! machine-readable JSON copy under `target/paper-results/`.

use ntier_core::{
    run_system_metered, ExperimentSpec, HardwareConfig, MetricsSink, RunMetrics, RunOutput,
    SoftAllocation, Tier, Topology, TopologyError,
};
use ntier_trace::json::Json;
use simcore::SimTime;
use std::fs;
use std::path::PathBuf;

/// Schedule used by all figure harnesses (30 s ramp, 120 s measured window).
pub use ntier_core::experiment::Schedule;

/// Common CLI flags shared by the figure harnesses, parsed from the
/// arguments after `cargo bench --bench figN --`:
///
/// * `--hw #W/#A/#C/#D` — override the figure's hardware configuration
///   (via `HardwareConfig::from_str`).
/// * `--soft #W_T-#A_T-#A_C` — override an allocation where the harness
///   accepts one (via `SoftAllocation::from_str`).
/// * `--users N[,N…]` — override the workload sweep points.
/// * `--quick` — short trials (10 s ramp, 30 s window) for smoke runs.
/// * `--faults TIER[:REPLICA]@FROM[-TO]` — crash one replica of `cmw` or
///   `db` at `FROM` seconds, recovering at `TO` (permanent if omitted).
///   Repeatable; comma-separated windows also accepted. Harnesses opt in
///   via [`BenchArgs::apply_faults`], which re-validates the topology and
///   surfaces a [`TopologyError`] instead of aborting deep in assembly.
/// * `--metrics PATH[:WINDOW_MS]` — record the fine-grained windowed time
///   series during each run and write one CSV per run next to `PATH`
///   (see [`MetricsSink`]). Collection is passive: the printed tables are
///   bit-identical with or without the flag.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--hw` override.
    pub hw: Option<HardwareConfig>,
    /// `--soft` override.
    pub soft: Option<SoftAllocation>,
    /// `--users` override.
    pub users: Option<Vec<u32>>,
    /// `--quick` flag.
    pub quick: bool,
    /// `--faults` crash windows, in flag order.
    pub faults: Vec<FaultFlag>,
    /// `--metrics` CSV sink (window defaults to 100 ms).
    pub metrics: Option<MetricsSink>,
}

/// One `--faults` crash window: which tier/replica goes down, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultFlag {
    /// Tier the window applies to.
    pub tier: Tier,
    /// Replica index within that tier.
    pub replica: u16,
    /// Crash instant, in seconds.
    pub crash_at: f64,
    /// Recovery instant, or `None` for a permanent crash.
    pub recover_at: Option<f64>,
}

impl FaultFlag {
    /// Parse one `TIER[:REPLICA]@FROM[-TO]` window, e.g. `cmw@60`,
    /// `db:1@40-70`.
    fn parse(spec: &str) -> Result<Self, String> {
        let err = || format!("--faults '{spec}' must be TIER[:REPLICA]@FROM[-TO]");
        let (target, window) = spec.split_once('@').ok_or_else(err)?;
        let (tier_s, replica_s) = match target.split_once(':') {
            Some((t, r)) => (t, Some(r)),
            None => (target, None),
        };
        let tier = match tier_s.trim().to_ascii_lowercase().as_str() {
            "web" => Tier::Web,
            "app" => Tier::App,
            "cmw" => Tier::Cmw,
            "db" => Tier::Db,
            other => return Err(format!("--faults: unknown tier '{other}' (web/app/cmw/db)")),
        };
        let replica: u16 = match replica_s {
            Some(r) => r.trim().parse().map_err(|_| err())?,
            None => 0,
        };
        let (from_s, to_s) = match window.split_once('-') {
            Some((f, t)) => (f, Some(t)),
            None => (window, None),
        };
        let crash_at: f64 = from_s.trim().parse().map_err(|_| err())?;
        let recover_at = match to_s {
            Some(t) => Some(t.trim().parse::<f64>().map_err(|_| err())?),
            None => None,
        };
        Ok(FaultFlag {
            tier,
            replica,
            crash_at,
            recover_at,
        })
    }
}

impl BenchArgs {
    /// Parse the process arguments; exits with a message on a malformed
    /// flag (the only abort left at the CLI boundary — everything below it
    /// returns `Result`).
    pub fn parse() -> Self {
        match Self::try_parse_from(std::env::args().skip(1)) {
            Ok(out) => out,
            Err(msg) => {
                eprintln!("bench flags: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Fallible parse. Unknown arguments (libtest passes some through) are
    /// ignored; malformed values for known flags are returned as errors.
    pub fn try_parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--hw" => match args.next().map(|v| v.parse()) {
                    Some(Ok(hw)) => out.hw = Some(hw),
                    Some(Err(e)) => return Err(e),
                    None => return Err("--hw needs a value".into()),
                },
                "--soft" => match args.next().map(|v| v.parse()) {
                    Some(Ok(soft)) => out.soft = Some(soft),
                    Some(Err(e)) => return Err(e),
                    None => return Err("--soft needs a value".into()),
                },
                "--users" => {
                    let Some(v) = args.next() else {
                        return Err("--users needs a value".into());
                    };
                    let list: Result<Vec<u32>, _> =
                        v.split(',').map(|p| p.trim().parse::<u32>()).collect();
                    match list {
                        Ok(list) if !list.is_empty() => out.users = Some(list),
                        _ => return Err(format!("--users '{v}' must be N[,N…]")),
                    }
                }
                "--faults" => {
                    let Some(v) = args.next() else {
                        return Err("--faults needs a value".into());
                    };
                    for part in v.split(',') {
                        out.faults.push(FaultFlag::parse(part.trim())?);
                    }
                }
                "--metrics" => {
                    let Some(v) = args.next() else {
                        return Err("--metrics needs PATH[:WINDOW_MS]".into());
                    };
                    out.metrics = Some(MetricsSink::parse(&v)?);
                }
                "--quick" => out.quick = true,
                _ => {}
            }
        }
        Ok(out)
    }

    /// Attach the `--faults` crash windows to `topo` and re-validate,
    /// surfacing scope violations (e.g. crashing a Web tier) as a
    /// [`TopologyError`] rather than a panic at system assembly.
    pub fn apply_faults(&self, topo: &mut Topology) -> Result<(), TopologyError> {
        for f in &self.faults {
            let Some(spec) = topo.tiers.iter_mut().find(|s| s.role == f.tier) else {
                return Err(TopologyError::UnsupportedChain(format!(
                    "--faults names a {} tier the chain does not have",
                    f.tier
                )));
            };
            let fault = std::mem::take(&mut spec.fault);
            spec.fault = fault.with_crash(
                f.replica,
                SimTime::from_secs_f64(f.crash_at),
                f.recover_at.map(SimTime::from_secs_f64),
            );
        }
        topo.validate()
    }

    /// The figure's hardware unless overridden.
    pub fn hw_or(&self, default: HardwareConfig) -> HardwareConfig {
        self.hw.unwrap_or(default)
    }

    /// The figure's allocation unless overridden.
    pub fn soft_or(&self, default: SoftAllocation) -> SoftAllocation {
        self.soft.unwrap_or(default)
    }

    /// The figure's workload sweep unless overridden.
    pub fn users_or(&self, default: Vec<u32>) -> Vec<u32> {
        self.users.clone().unwrap_or(default)
    }

    /// Bench schedule, honoring `--quick`.
    pub fn schedule(&self) -> Schedule {
        if self.quick {
            Schedule::Quick
        } else {
            Schedule::Default
        }
    }
}

/// Build one spec with the bench schedule. The configuration is expressed
/// as an explicit [`Topology`] (the paper 4-tier chain for this
/// hardware/allocation pair) so figure configs and non-paper chains flow
/// through the same assembly path.
pub fn spec(hw: HardwareConfig, soft: SoftAllocation, users: u32) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(hw, soft, users).with_topology(Topology::paper(hw, soft));
    s.schedule = Schedule::Default;
    s
}

/// [`spec`] with an explicit schedule (from [`BenchArgs::schedule`]).
pub fn spec_scheduled(
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: u32,
    schedule: Schedule,
) -> ExperimentSpec {
    let mut s = spec(hw, soft, users);
    s.schedule = schedule;
    s
}

/// Run a workload sweep for one allocation.
pub fn run_sweep(hw: HardwareConfig, soft: SoftAllocation, users: &[u32]) -> Vec<RunOutput> {
    run_sweep_scheduled(hw, soft, users, Schedule::Default)
}

/// [`run_sweep`] with an explicit schedule (from [`BenchArgs::schedule`]).
pub fn run_sweep_scheduled(
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: &[u32],
    schedule: Schedule,
) -> Vec<RunOutput> {
    let specs: Vec<ExperimentSpec> = users
        .iter()
        .map(|&u| spec_scheduled(hw, soft, u, schedule))
        .collect();
    ntier_core::sweep(&specs)
}

/// [`run_sweep_scheduled`] with the CLI `--faults` crash windows attached
/// to every spec's topology; exits with the [`TopologyError`] message when
/// a flag is out of scope (e.g. crashing the web tier).
pub fn run_sweep_args(
    args: &BenchArgs,
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: &[u32],
) -> Vec<RunOutput> {
    let mut topo = Topology::paper(hw, soft);
    if let Err(e) = args.apply_faults(&mut topo) {
        eprintln!("bench flags: {e}");
        std::process::exit(2);
    }
    let specs: Vec<ExperimentSpec> = users
        .iter()
        .map(|&u| {
            let mut s = ExperimentSpec::new(hw, soft, u).with_topology(topo.clone());
            s.schedule = args.schedule();
            s
        })
        .collect();
    ntier_core::sweep(&specs)
}

/// When `--metrics` was given, re-run each sweep point with the windowed
/// metrics pipeline enabled and write one CSV per point (suffix =
/// `<label>-<users>`). The metered runs are bit-identical to the sweep the
/// tables were printed from (passive collection), so the CSVs describe
/// exactly the published numbers. Returns the metered series for harnesses
/// that also want to diagnose them.
pub fn dump_metrics_args(
    args: &BenchArgs,
    label: &str,
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: &[u32],
) -> Vec<RunMetrics> {
    let Some(sink) = &args.metrics else {
        return Vec::new();
    };
    // Bench binaries run with the package dir as cwd; anchor relative paths
    // at the workspace root so `--metrics target/m` lands where users look
    // (same convention as `save_json`).
    let mut sink = sink.clone();
    if sink.path.is_relative() {
        sink.path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&sink.path);
    }
    let mut out = Vec::new();
    for &u in users {
        let mut spec = spec_scheduled(hw, soft, u, args.schedule());
        if let Some(topo) = spec.topology.as_mut() {
            if let Err(e) = args.apply_faults(topo) {
                eprintln!("bench flags: {e}");
                std::process::exit(2);
            }
        }
        let mut cfg = spec.to_config();
        cfg.metrics = sink.config();
        let (_, m) = run_system_metered(cfg);
        match sink.write_csv_suffixed(&format!("{label}-{u}"), &m) {
            Ok(path) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("--metrics: cannot write {}: {e}", sink.path.display()),
        }
        out.push(m);
    }
    out
}

/// Print a header for a figure/table.
pub fn banner(title: &str, caption: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(78));
}

/// Print one labeled series as an aligned table: rows = workloads,
/// columns = one per configuration.
pub fn print_series(
    row_label: &str,
    rows: &[u32],
    col_labels: &[String],
    columns: &[Vec<f64>],
    unit: &str,
) {
    print!("{row_label:>8}");
    for l in col_labels {
        print!(" {l:>22}");
    }
    println!("   [{unit}]");
    for (i, r) in rows.iter().enumerate() {
        print!("{r:>8}");
        for col in columns {
            print!(" {:>22.1}", col[i]);
        }
        println!();
    }
}

/// Percentage difference `(a-b)/b`, as the paper quotes ("X% higher").
pub fn pct_diff(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return f64::INFINITY;
    }
    (a - b) / b * 100.0
}

/// Save a JSON artifact next to the printed table (always under the
/// workspace root's `target/paper-results/`, independent of the bench
/// binary's working directory).
pub fn save_json(name: &str, value: &Json) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if fs::write(&path, value.to_pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Save a raw string artifact (JSONL, Chrome trace) under
/// `target/paper-results/`.
pub fn save_text(name: &str, contents: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(name);
    if fs::write(&path, contents).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Extract the goodput series at the threshold nearest `secs`.
pub fn goodput_series(runs: &[RunOutput], secs: f64) -> Vec<f64> {
    runs.iter().map(|r| r.goodput_at(secs)).collect()
}

/// Extract total throughput series.
pub fn throughput_series(runs: &[RunOutput]) -> Vec<f64> {
    runs.iter().map(|r| r.throughput).collect()
}

/// Mean CPU utilization series of a tier (×100).
pub fn tier_cpu_series(runs: &[RunOutput], tier: ntier_core::Tier) -> Vec<f64> {
    runs.iter().map(|r| r.tier_cpu_util(tier) * 100.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_matches_paper_convention() {
        assert!((pct_diff(128.0, 100.0) - 28.0).abs() < 1e-12);
        assert_eq!(pct_diff(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn try_parse_surfaces_errors_instead_of_aborting() {
        let args = |list: &[&str]| BenchArgs::try_parse_from(list.iter().map(|s| s.to_string()));
        assert!(args(&["--hw", "not-a-topology"]).is_err());
        assert!(args(&["--soft"]).is_err());
        assert!(args(&["--users", "a,b"]).is_err());
        let ok = args(&["--hw", "1/2/1/2", "--quick", "--bench"]).expect("parses");
        assert_eq!(ok.hw, Some(HardwareConfig::one_two_one_two()));
        assert!(ok.quick);
    }

    #[test]
    fn metrics_flag_parses_sink() {
        let args = |list: &[&str]| BenchArgs::try_parse_from(list.iter().map(|s| s.to_string()));
        let ok = args(&["--metrics", "out/fig2.csv:250"]).expect("parses");
        let sink = ok.metrics.expect("sink present");
        assert_eq!(sink.path, std::path::PathBuf::from("out/fig2.csv"));
        assert_eq!(sink.window, SimTime::from_millis(250));
        let ok = args(&["--metrics", "fig2.csv"]).expect("parses");
        assert_eq!(ok.metrics.unwrap().window, SimTime::from_millis(100));
        assert!(args(&["--metrics"]).is_err());
        assert!(args(&["--metrics", "x.csv:0"]).is_err());
    }

    #[test]
    fn fault_flag_parses_windows() {
        let f = FaultFlag::parse("db:1@40-70").expect("parses");
        assert_eq!(f.tier, Tier::Db);
        assert_eq!(f.replica, 1);
        assert_eq!(f.crash_at, 40.0);
        assert_eq!(f.recover_at, Some(70.0));
        let f = FaultFlag::parse("cmw@60").expect("parses");
        assert_eq!((f.tier, f.replica, f.recover_at), (Tier::Cmw, 0, None));
        assert!(FaultFlag::parse("disk@40").is_err());
        assert!(FaultFlag::parse("db:1").is_err());
    }

    #[test]
    fn apply_faults_validates_scope() {
        let hw = HardwareConfig::one_two_one_two();
        let soft = SoftAllocation::rule_of_thumb();
        let args =
            BenchArgs::try_parse_from(["--faults", "db:1@40-70"].iter().map(|s| s.to_string()))
                .expect("parses");
        let mut topo = Topology::paper(hw, soft);
        args.apply_faults(&mut topo).expect("db crash is in scope");
        assert_eq!(topo.tiers[3].fault.crashes.len(), 1);

        // Crashing the web tier is out of scope → TopologyError, not a panic.
        let bad = BenchArgs::try_parse_from(["--faults", "web@40"].iter().map(|s| s.to_string()))
            .expect("parses");
        let mut topo = Topology::paper(hw, soft);
        assert!(bad.apply_faults(&mut topo).is_err());
    }

    #[test]
    fn spec_uses_bench_schedule() {
        let s = spec(
            HardwareConfig::one_two_one_two(),
            SoftAllocation::conservative(),
            1000,
        );
        assert_eq!(s.schedule, Schedule::Default);
        assert_eq!(s.users, 1000);
    }
}
