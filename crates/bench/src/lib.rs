//! Shared helpers for the figure/table regeneration harnesses.
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper by
//! declaring an [`ExperimentPlan`] (variants × workload ramp) and running it
//! through `ntier-lab`'s executor: [`plan`] seeds the plan from the shared
//! CLI flags, [`variant`] attaches any `--faults` windows, and [`execute`]
//! honors `--threads` (parallel work-stealing execution), `--store`
//! (resumable artifact store), and `--metrics` (per-point CSV time series).
//! The printed series and saved JSON artifacts land under
//! `target/paper-results/`.

use metrics::slo_burn;
use ntier_core::{
    ExperimentSpec, HardwareConfig, MetricsConfig, SoftAllocation, Topology, TraceConfig,
};
use ntier_trace::json::Json;
use ntier_trace::Bucket;
use std::fs;
use std::path::{Path, PathBuf};

pub use ntier_lab::{
    run_plan, run_plan_with_store, ArtifactStore, BenchArgs, Executor, ExperimentPlan, FaultFlag,
    PlanResults, RunPoint, Schedule, Variant,
};

/// Build one spec with the bench schedule. The configuration is expressed
/// as an explicit [`Topology`] (the paper 4-tier chain for this
/// hardware/allocation pair) so figure configs and non-paper chains flow
/// through the same assembly path.
pub fn spec(hw: HardwareConfig, soft: SoftAllocation, users: u32) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(hw, soft, users).with_topology(Topology::paper(hw, soft));
    s.schedule = Schedule::Default;
    s
}

/// [`spec`] with an explicit schedule (from [`BenchArgs::schedule`]).
pub fn spec_scheduled(
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: u32,
    schedule: Schedule,
) -> ExperimentSpec {
    let mut s = spec(hw, soft, users);
    s.schedule = schedule;
    s
}

/// Start a figure's experiment plan from the shared CLI flags: the bench
/// schedule (honoring `--quick`), passive windowed collection when
/// `--metrics` was given, engine profiling when `--profile` was, the
/// `--queue` event-list backend when one was named, and the `--par-run`
/// worker count for each point's sharded engine. Add variants and the
/// workload ramp, then run it with [`execute`].
pub fn plan(name: &str, args: &BenchArgs) -> ExperimentPlan {
    let mut p = ExperimentPlan::new(name)
        .with_schedule(args.schedule())
        .with_profile(args.profile);
    if let Some(sink) = &args.metrics {
        p = p.with_metrics(sink.config());
    }
    if let Some(kind) = args.queue {
        p = p.with_queue(kind);
    }
    if let Some(n) = args.par_run {
        p = p.with_par_run(n);
    }
    let flight = args.flight();
    if flight.enabled() {
        // The recorder classifies the spans the tracer records, so arming
        // it from the CLI implies tracing every request.
        p = p.with_flight(flight).with_trace(TraceConfig::Full);
    }
    if let Some(slo) = args.slo {
        // The burn-rate alert stream reads per-window violation counts, so
        // an SLO implies the windowed metrics pipeline.
        p = p.with_slo(slo);
        if p.metrics == MetricsConfig::Off {
            p = p.with_metrics(MetricsConfig::windowed_default());
        }
    }
    p
}

/// A paper-chain variant with the CLI `--faults` injections (crash, slow,
/// drop) and `--retry`/`--retry-budget` overrides attached; exits with the
/// [`tiers::TopologyError`] message when a flag is out of scope (e.g.
/// crashing the web tier).
pub fn variant(args: &BenchArgs, hw: HardwareConfig, soft: SoftAllocation) -> Variant {
    let mut topo = Topology::paper(hw, soft);
    if let Err(e) = args.apply_faults(&mut topo) {
        eprintln!("bench flags: {e}");
        std::process::exit(2);
    }
    let mut v = Variant::paper(hw, soft).with_topology(topo);
    if let Some(retry) = args.retry {
        v = v.with_retry(retry);
    }
    if let Some(budget) = args.retry_budget {
        v = v.with_retry_budget(budget);
    }
    v
}

/// Execute a plan with the shared CLI flags applied: `--threads` picks the
/// worker count (all cores by default), `--store DIR` reuses points already
/// in the artifact-store manifest, and `--metrics PATH[:WINDOW_MS]` writes
/// one CSV of windowed time series per executed point. Exits with the error
/// message when the store directory is unusable (CLI boundary — everything
/// below returns `Result`).
pub fn execute(args: &BenchArgs, plan: &ExperimentPlan) -> PlanResults {
    let executor = args.executor();
    let outcome = match &args.store {
        Some(dir) => ArtifactStore::open(anchor(dir))
            .and_then(|mut store| run_plan_with_store(plan, &executor, &mut store)),
        None => Ok(run_plan(plan, &executor)),
    };
    let results = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench store: {e}");
            std::process::exit(2);
        }
    };
    if results.skipped > 0 {
        println!(
            "[store: reused {} of {} points, executed {}]",
            results.skipped,
            results.points.len(),
            results.executed
        );
    }
    dump_metrics(args, &results);
    if args.slo.is_some() {
        dump_alerts(&results);
    }
    if args.tail_sample.is_some() {
        dump_flight(&results);
    }
    if args.profile {
        dump_profiles(&results);
    }
    results
}

/// When `--slo` was given, print each point's burn-rate alert stream after
/// the tables (empty stream ⇒ one quiet line, so absence is visible too).
fn dump_alerts(results: &PlanResults) {
    for (point, m) in results.points.iter().zip(&results.metrics) {
        let Some(m) = m else { continue };
        let alerts = slo_burn::alerts(&m.client, m.window.as_secs_f64());
        println!("\n[slo {}]", point.label);
        if alerts.is_empty() {
            println!("no burn-rate alerts (error budget intact)");
        } else {
            print!("{}", slo_burn::render_alerts(&alerts));
        }
    }
}

/// When `--tail-sample` was given, print each executed point's critical-path
/// profile (top buckets of the merged attribution) and its slowest retained
/// exemplars with their dominant latency bucket.
fn dump_flight(results: &PlanResults) {
    for (point, trace) in results.points.iter().zip(&results.traces) {
        let Some(flight) = trace.as_ref().and_then(|t| t.flight.as_deref()) else {
            continue;
        };
        println!("\n[critical-path {}]", point.label);
        let profile = flight.profile();
        let mut ranked: Vec<Bucket> = Bucket::ALL.into_iter().collect();
        ranked.sort_by_key(|b| std::cmp::Reverse(profile.get(*b)));
        let top: Vec<String> = ranked
            .iter()
            .take(3)
            .filter(|b| profile.get(**b) > 0)
            .map(|b| format!("{} {:.0}%", b.label(), profile.fraction(*b) * 100.0))
            .collect();
        println!(
            "retained {} exemplars across {} windows ({} truncated): {}",
            flight.retained(),
            flight.windows.len(),
            flight.truncated_windows(),
            if top.is_empty() {
                "no classified latency".to_string()
            } else {
                top.join(", ")
            }
        );
        for e in flight.slowest(3) {
            let (b, us) = e.attribution.dominant();
            println!(
                "  trace {} {:.3}s [{}] dominant {} ({:.0}%)",
                e.trace,
                e.latency.as_secs_f64(),
                e.kind.label(),
                b.label(),
                if e.attribution.latency_micros == 0 {
                    0.0
                } else {
                    us as f64 / e.attribution.latency_micros as f64 * 100.0
                }
            );
        }
    }
}

/// When `--profile` was given, print each point's engine phase-timing
/// summary after the tables. Profiling is passive, so the tables above are
/// bit-identical with or without the flag.
fn dump_profiles(results: &PlanResults) {
    for (point, out) in results.points.iter().zip(&results.outputs) {
        let Some(profile) = &out.profile else {
            continue;
        };
        println!("\n[profile {}]", point.label);
        println!("{}", profile.summary());
    }
}

/// When `--metrics` was given, write one CSV of windowed series per metered
/// point (suffix = the point label with path-hostile characters mapped
/// away). Collection is passive, so the CSVs describe exactly the published
/// numbers.
fn dump_metrics(args: &BenchArgs, results: &PlanResults) {
    let Some(sink) = &args.metrics else {
        return;
    };
    let mut sink = sink.clone();
    if sink.path.is_relative() {
        sink.path = anchor(&sink.path);
    }
    for (point, m) in results.points.iter().zip(&results.metrics) {
        let Some(m) = m else { continue };
        let suffix: String = point
            .label
            .chars()
            .map(|c| if c == '/' || c == '\\' { '-' } else { c })
            .collect();
        match sink.write_csv_suffixed(&suffix, m) {
            Ok(path) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("--metrics: cannot write {}: {e}", sink.path.display()),
        }
    }
}

/// Bench binaries run with the package dir as cwd; anchor relative paths at
/// the workspace root so `--store target/lab` and `--metrics target/m.csv`
/// land where users look (same convention as [`save_json`]).
fn anchor(path: &Path) -> PathBuf {
    if path.is_relative() {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    } else {
        path.to_path_buf()
    }
}

/// Print a header for a figure/table.
pub fn banner(title: &str, caption: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(78));
}

/// Print one labeled series as an aligned table: rows = workloads,
/// columns = one per configuration.
pub fn print_series(
    row_label: &str,
    rows: &[u32],
    col_labels: &[String],
    columns: &[Vec<f64>],
    unit: &str,
) {
    print!("{row_label:>8}");
    for l in col_labels {
        print!(" {l:>22}");
    }
    println!("   [{unit}]");
    for (i, r) in rows.iter().enumerate() {
        print!("{r:>8}");
        for col in columns {
            print!(" {:>22.1}", col[i]);
        }
        println!();
    }
}

/// Percentage difference `(a-b)/b`, as the paper quotes ("X% higher").
pub fn pct_diff(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return f64::INFINITY;
    }
    (a - b) / b * 100.0
}

/// Save a JSON artifact next to the printed table (always under the
/// workspace root's `target/paper-results/`, independent of the bench
/// binary's working directory).
pub fn save_json(name: &str, value: &Json) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if fs::write(&path, value.to_pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Save a raw string artifact (JSONL, Chrome trace) under
/// `target/paper-results/`.
pub fn save_text(name: &str, contents: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(name);
    if fs::write(&path, contents).is_ok() {
        println!("[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_matches_paper_convention() {
        assert!((pct_diff(128.0, 100.0) - 28.0).abs() < 1e-12);
        assert_eq!(pct_diff(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn spec_uses_bench_schedule() {
        let s = spec(
            HardwareConfig::one_two_one_two(),
            SoftAllocation::conservative(),
            1000,
        );
        assert_eq!(s.schedule, Schedule::Default);
        assert_eq!(s.users, 1000);
    }

    #[test]
    fn plan_carries_schedule_and_metrics_flags() {
        let args =
            BenchArgs::try_parse_from(["--quick", "--metrics", "m.csv:250"].map(String::from))
                .expect("parses");
        let p = plan("t", &args);
        assert_eq!(p.schedule, Schedule::Quick);
        assert!(p.metrics.enabled());
        assert_eq!(plan("t", &BenchArgs::default()).schedule, Schedule::Default);
    }

    #[test]
    fn variant_attaches_fault_windows() {
        let args = BenchArgs::try_parse_from(["--faults", "db:1@40-70"].map(String::from))
            .expect("parses");
        let v = variant(
            &args,
            HardwareConfig::one_two_one_two(),
            SoftAllocation::rule_of_thumb(),
        );
        let topo = v.topology.expect("explicit chain");
        assert_eq!(topo.tiers[3].fault.crashes.len(), 1);
    }
}
