//! Shared helpers for the figure/table regeneration harnesses.
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper:
//! it sweeps the same configurations, prints the same series, and saves a
//! machine-readable JSON copy under `target/paper-results/`.

use ntier_core::{ExperimentSpec, HardwareConfig, RunOutput, SoftAllocation, Topology};
use ntier_trace::json::Json;
use std::fs;
use std::path::PathBuf;

/// Schedule used by all figure harnesses (30 s ramp, 120 s measured window).
pub use ntier_core::experiment::Schedule;

/// Common CLI flags shared by the figure harnesses, parsed from the
/// arguments after `cargo bench --bench figN --`:
///
/// * `--hw #W/#A/#C/#D` — override the figure's hardware configuration
///   (via `HardwareConfig::from_str`).
/// * `--soft #W_T-#A_T-#A_C` — override an allocation where the harness
///   accepts one (via `SoftAllocation::from_str`).
/// * `--users N[,N…]` — override the workload sweep points.
/// * `--quick` — short trials (10 s ramp, 30 s window) for smoke runs.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--hw` override.
    pub hw: Option<HardwareConfig>,
    /// `--soft` override.
    pub soft: Option<SoftAllocation>,
    /// `--users` override.
    pub users: Option<Vec<u32>>,
    /// `--quick` flag.
    pub quick: bool,
}

impl BenchArgs {
    /// Parse the process arguments; exits with a message on a malformed
    /// flag. Unknown arguments (libtest passes some through) are ignored.
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        let fail = |msg: String| -> ! {
            eprintln!("bench flags: {msg}");
            std::process::exit(2);
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--hw" => match args.next().map(|v| v.parse()) {
                    Some(Ok(hw)) => out.hw = Some(hw),
                    Some(Err(e)) => fail(e),
                    None => fail("--hw needs a value".into()),
                },
                "--soft" => match args.next().map(|v| v.parse()) {
                    Some(Ok(soft)) => out.soft = Some(soft),
                    Some(Err(e)) => fail(e),
                    None => fail("--soft needs a value".into()),
                },
                "--users" => {
                    let Some(v) = args.next() else {
                        fail("--users needs a value".into());
                    };
                    let list: Result<Vec<u32>, _> =
                        v.split(',').map(|p| p.trim().parse::<u32>()).collect();
                    match list {
                        Ok(list) if !list.is_empty() => out.users = Some(list),
                        _ => fail(format!("--users '{v}' must be N[,N…]")),
                    }
                }
                "--quick" => out.quick = true,
                _ => {}
            }
        }
        out
    }

    /// The figure's hardware unless overridden.
    pub fn hw_or(&self, default: HardwareConfig) -> HardwareConfig {
        self.hw.unwrap_or(default)
    }

    /// The figure's allocation unless overridden.
    pub fn soft_or(&self, default: SoftAllocation) -> SoftAllocation {
        self.soft.unwrap_or(default)
    }

    /// The figure's workload sweep unless overridden.
    pub fn users_or(&self, default: Vec<u32>) -> Vec<u32> {
        self.users.clone().unwrap_or(default)
    }

    /// Bench schedule, honoring `--quick`.
    pub fn schedule(&self) -> Schedule {
        if self.quick {
            Schedule::Quick
        } else {
            Schedule::Default
        }
    }
}

/// Build one spec with the bench schedule. The configuration is expressed
/// as an explicit [`Topology`] (the paper 4-tier chain for this
/// hardware/allocation pair) so figure configs and non-paper chains flow
/// through the same assembly path.
pub fn spec(hw: HardwareConfig, soft: SoftAllocation, users: u32) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(hw, soft, users).with_topology(Topology::paper(hw, soft));
    s.schedule = Schedule::Default;
    s
}

/// [`spec`] with an explicit schedule (from [`BenchArgs::schedule`]).
pub fn spec_scheduled(
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: u32,
    schedule: Schedule,
) -> ExperimentSpec {
    let mut s = spec(hw, soft, users);
    s.schedule = schedule;
    s
}

/// Run a workload sweep for one allocation.
pub fn run_sweep(hw: HardwareConfig, soft: SoftAllocation, users: &[u32]) -> Vec<RunOutput> {
    run_sweep_scheduled(hw, soft, users, Schedule::Default)
}

/// [`run_sweep`] with an explicit schedule (from [`BenchArgs::schedule`]).
pub fn run_sweep_scheduled(
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: &[u32],
    schedule: Schedule,
) -> Vec<RunOutput> {
    let specs: Vec<ExperimentSpec> = users
        .iter()
        .map(|&u| spec_scheduled(hw, soft, u, schedule))
        .collect();
    ntier_core::sweep(&specs)
}

/// Print a header for a figure/table.
pub fn banner(title: &str, caption: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(78));
}

/// Print one labeled series as an aligned table: rows = workloads,
/// columns = one per configuration.
pub fn print_series(
    row_label: &str,
    rows: &[u32],
    col_labels: &[String],
    columns: &[Vec<f64>],
    unit: &str,
) {
    print!("{row_label:>8}");
    for l in col_labels {
        print!(" {l:>22}");
    }
    println!("   [{unit}]");
    for (i, r) in rows.iter().enumerate() {
        print!("{r:>8}");
        for col in columns {
            print!(" {:>22.1}", col[i]);
        }
        println!();
    }
}

/// Percentage difference `(a-b)/b`, as the paper quotes ("X% higher").
pub fn pct_diff(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return f64::INFINITY;
    }
    (a - b) / b * 100.0
}

/// Save a JSON artifact next to the printed table (always under the
/// workspace root's `target/paper-results/`, independent of the bench
/// binary's working directory).
pub fn save_json(name: &str, value: &Json) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if fs::write(&path, value.to_pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Save a raw string artifact (JSONL, Chrome trace) under
/// `target/paper-results/`.
pub fn save_text(name: &str, contents: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(name);
    if fs::write(&path, contents).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Extract the goodput series at the threshold nearest `secs`.
pub fn goodput_series(runs: &[RunOutput], secs: f64) -> Vec<f64> {
    runs.iter().map(|r| r.goodput_at(secs)).collect()
}

/// Extract total throughput series.
pub fn throughput_series(runs: &[RunOutput]) -> Vec<f64> {
    runs.iter().map(|r| r.throughput).collect()
}

/// Mean CPU utilization series of a tier (×100).
pub fn tier_cpu_series(runs: &[RunOutput], tier: ntier_core::Tier) -> Vec<f64> {
    runs.iter().map(|r| r.tier_cpu_util(tier) * 100.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_matches_paper_convention() {
        assert!((pct_diff(128.0, 100.0) - 28.0).abs() < 1e-12);
        assert_eq!(pct_diff(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn spec_uses_bench_schedule() {
        let s = spec(
            HardwareConfig::one_two_one_two(),
            SoftAllocation::conservative(),
            1000,
        );
        assert_eq!(s.schedule, Schedule::Default);
        assert_eq!(s.users, 1000);
    }
}
