//! Calibration probe: sweep workloads on both paper topologies and print
//! throughput, goodput, and per-tier utilization so the service-demand
//! constants can be checked against DESIGN.md §4 (knees near 5 800 / 6 200
//! users, Tomcat critical in 1/2/1/2, C-JDBC critical in 1/4/1/4).
//!
//! One four-variant experiment plan (two topologies × two allocations, each
//! with its own workload ramp) run through the shared engine — use
//! `--threads N` to control parallelism, `--store DIR` to resume.

use bench::{execute, plan, BenchArgs, PlanResults, Variant};
use ntier_core::{HardwareConfig, SoftAllocation, Tier};

fn print_variant(results: &PlanResults, v: usize, label: &str) {
    println!("\n=== {label} ===");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "users",
        "tp",
        "good2s",
        "good1s",
        "good.5s",
        "rt_ms",
        "web%",
        "app%",
        "cmw%",
        "db%",
        "gc_cmw%"
    );
    for out in results.variant_outputs(v) {
        let cmw_gc = out.tier_nodes(Tier::Cmw)[0].gc_fraction;
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>7.1} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8.3}",
            out.users,
            out.throughput,
            out.goodput[2],
            out.goodput[1],
            out.goodput[0],
            out.mean_rt * 1e3,
            out.tier_cpu_util(Tier::Web),
            out.tier_cpu_util(Tier::App),
            out.tier_cpu_util(Tier::Cmw),
            out.tier_cpu_util(Tier::Db),
            cmw_gc,
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    let hw12 = HardwareConfig::one_two_one_two();
    let hw14 = HardwareConfig::one_four_one_four();
    let users12: Vec<u32> = (0..8).map(|i| 5000 + i * 400).collect();
    let users14: Vec<u32> = (0..8).map(|i| 6000 + i * 300).collect();

    let mut probe = plan("calibrate", &args);
    for (hw, users) in [(hw12, &users12), (hw14, &users14)] {
        for soft in [
            SoftAllocation::new(400, 150, 60),
            SoftAllocation::new(400, 6, 6),
        ] {
            probe = probe.with_variant(Variant::paper(hw, soft).with_users(users.clone()));
        }
    }
    let results = execute(&args, &probe);
    for (v, variant) in probe.variants.iter().enumerate() {
        print_variant(&results, v, &variant.label);
    }
}
