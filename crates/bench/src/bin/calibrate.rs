//! Calibration probe: sweep workloads on both paper topologies and print
//! throughput, goodput, and per-tier utilization so the service-demand
//! constants can be checked against DESIGN.md §4 (knees near 5 800 / 6 200
//! users, Tomcat critical in 1/2/1/2, C-JDBC critical in 1/4/1/4).

use tiers::{run_system, HardwareConfig, SoftAllocation, SystemConfig, Tier};

fn sweep(hw: HardwareConfig, soft: SoftAllocation, users: &[u32]) {
    println!("\n=== {hw}({soft}) ===");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "users",
        "tp",
        "good2s",
        "good1s",
        "good.5s",
        "rt_ms",
        "web%",
        "app%",
        "cmw%",
        "db%",
        "gc_cmw%"
    );
    for &u in users {
        let cfg = SystemConfig::new(hw, soft, u);
        let out = run_system(cfg);
        let cmw_gc = out.tier_nodes(Tier::Cmw)[0].gc_fraction;
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>7.1} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8.3}",
            u,
            out.throughput,
            out.goodput[2],
            out.goodput[1],
            out.goodput[0],
            out.mean_rt * 1e3,
            out.tier_cpu_util(Tier::Web),
            out.tier_cpu_util(Tier::App),
            out.tier_cpu_util(Tier::Cmw),
            out.tier_cpu_util(Tier::Db),
            cmw_gc,
        );
    }
}

fn main() {
    let users: Vec<u32> = (0..8).map(|i| 5000 + i * 400).collect();
    sweep(
        HardwareConfig::one_two_one_two(),
        SoftAllocation::new(400, 150, 60),
        &users,
    );
    sweep(
        HardwareConfig::one_two_one_two(),
        SoftAllocation::new(400, 6, 6),
        &users,
    );
    let users14: Vec<u32> = (0..8).map(|i| 6000 + i * 300).collect();
    sweep(
        HardwareConfig::one_four_one_four(),
        SoftAllocation::new(400, 150, 60),
        &users14,
    );
    sweep(
        HardwareConfig::one_four_one_four(),
        SoftAllocation::new(400, 6, 6),
        &users14,
    );
}
