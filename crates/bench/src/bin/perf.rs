//! perf — the committed perf-trajectory suite.
//!
//! Runs a fixed suite — one representative configuration per figure
//! harness, one deliberately large stress topology, and one million-session
//! closed-loop point (serial *and* under the horizon-sharded engine at 2, 4,
//! and 8 worker threads) — with engine profiling on, and writes a
//! schema-versioned `BENCH_8.json` (see
//! `ntier_report::bench_json`) with events/sec, wall-clock, event counts,
//! peak RSS, and — for the parallel members — per-shard utilization and
//! barrier-stall share, fingerprinted with the machine it ran on.
//!
//! ```text
//! cargo run --release -p ntier-bench --bin perf -- --quick
//!     regenerate the committed baseline at <workspace>/BENCH_8.json
//!
//! cargo run --release -p ntier-bench --bin perf -- --quick --check \
//!     --out target/BENCH_fresh.json
//!     CI mode: measure, write the fresh report to --out, grade it against
//!     the committed baseline. Warns (exit 0) on moderate slowdowns —
//!     shared runners are noisy — and fails (exit 1) only past the
//!     baseline's hard tolerance (2x by default).
//! ```
//!
//! Simulated results are deterministic — the parallel members reproduce the
//! serial members' outputs bit-for-bit (proven by the differential and
//! golden suites) — so only the wall-clock side varies by machine, which is
//! why the baseline embeds tolerances and a fingerprint instead of expecting
//! exact numbers. The per-shard rows record *where* parallel wall-clock
//! went: busy inside barrier rounds vs. stalled at the lookahead horizon.
//! On a single-core machine the parallel members measure the sharding
//! overhead honestly (expect ≤ 1x, all stall) rather than a speedup.

use bench::{spec_scheduled, BenchArgs, Schedule};
use ntier_core::{HardwareConfig, SoftAllocation};
use ntier_report::{workspace_root, BenchEntry, BenchReport, Severity, ShardEntry};
use std::path::PathBuf;
use tiers::run_system_profiled;

/// One suite member: a named representative configuration, plus the worker
/// count for its sharded engine (1 = the classic serial run).
struct Member {
    name: &'static str,
    hw: HardwareConfig,
    soft: SoftAllocation,
    users: u32,
    par_run: u32,
}

/// The fixed suite. Each figure harness is represented by one point of its
/// grid (its most loaded paper configuration); `stress` is a deliberately
/// large non-paper topology that leans on replica fan-out; `stress1m` is a
/// million-session closed-loop run exercising lazy session materialization
/// and the staged-arrival lane (sessions vastly outnumber service capacity,
/// so it stresses queue depth, not throughput). The `stress1m-parN` members
/// rerun the same configuration under the horizon-sharded engine with N
/// worker threads — same bits out, different wall-clock — so the committed
/// trajectory records the parallel overhead/speedup alongside the serial
/// baseline.
fn suite() -> Vec<Member> {
    let m = |name, hw, soft, users| Member {
        name,
        hw,
        soft,
        users,
        par_run: 1,
    };
    let h1212 = HardwareConfig::one_two_one_two();
    let h1414 = HardwareConfig::one_four_one_four();
    let rot = SoftAllocation::rule_of_thumb();
    let stress1m = |name, par_run| Member {
        name,
        hw: HardwareConfig::new(1, 8, 1, 8),
        soft: rot,
        users: 1_000_000,
        par_run,
    };
    vec![
        m("fig2", h1212, SoftAllocation::conservative(), 5400),
        m("fig3", h1414, rot, 7000),
        m("fig4", h1212, SoftAllocation::new(400, 100, 60), 3000),
        m("fig5", h1414, SoftAllocation::new(400, 150, 100), 6000),
        m("fig6", h1212, SoftAllocation::new(150, 60, 20), 3000),
        m("fig7", h1212, rot, 4600),
        m("fig10", h1414, SoftAllocation::conservative(), 5000),
        m("table1", h1212, rot, 2000),
        m("stress", HardwareConfig::new(1, 8, 1, 8), rot, 12000),
        stress1m("stress1m", 1),
        stress1m("stress1m-par2", 2),
        stress1m("stress1m-par4", 4),
        stress1m("stress1m-par8", 8),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let mut check = false;
    let mut out_flag: Option<PathBuf> = None;
    let mut rest = args.rest.iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match rest.next() {
                Some(p) => out_flag = Some(PathBuf::from(p)),
                None => {
                    eprintln!("perf: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("perf: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    let schedule = args.schedule();
    if !args.quick {
        eprintln!("[perf: full schedule; the committed baseline uses --quick]");
    }

    // One untimed warm-up of the largest member before anything is
    // measured: the first million-session run in a process pays every page
    // fault for the session slabs, and later runs reuse the allocator's
    // warm pages — without this, whichever stress1m member ran first would
    // look ~2x slower than its siblings for reasons that have nothing to do
    // with the engine (measured: 2.5s cold vs 1.4s warm on one core).
    {
        let spec = spec_scheduled(
            HardwareConfig::new(1, 8, 1, 8),
            SoftAllocation::rule_of_thumb(),
            1_000_000,
            schedule,
        );
        let _ = tiers::run_system(spec.to_config());
    }

    let mut report = BenchReport::new(args.quick);
    for member in suite() {
        let spec = spec_scheduled(member.hw, member.soft, member.users, schedule);
        let mut cfg = spec.to_config();
        if let Some(kind) = args.queue {
            cfg.queue = kind;
        }
        // `--par-run` overrides the whole suite (ad-hoc exploration); the
        // committed baseline runs without it, so the members' own worker
        // counts (serial, plus the stress1m-parN ladder) hold.
        cfg.par_run = args.par_run.unwrap_or(member.par_run);
        let out = run_system_profiled(cfg);
        let profile = out.profile.as_ref().expect("profiled run");
        let shards: Vec<ShardEntry> = if member.par_run > 1 || args.par_run.is_some() {
            profile
                .shards
                .iter()
                .map(|s| ShardEntry {
                    shard: s.shard as u64,
                    events: s.events_processed,
                    utilization: s.utilization(profile.wall_secs),
                    stall_share: s.stall_share(profile.wall_secs),
                })
                .collect()
        } else {
            Vec::new()
        };
        let entry = BenchEntry {
            name: member.name.to_string(),
            events: profile.events_processed,
            wall_secs: profile.wall_secs,
            events_per_sec: profile.events_per_sec(),
            peak_rss_bytes: profile.peak_rss_bytes,
            shards,
        };
        println!(
            "{:<13} {:>9} events  {:>6.2}s  {:>11.0} ev/s  rss {}",
            entry.name,
            entry.events,
            entry.wall_secs,
            entry.events_per_sec,
            entry
                .peak_rss_bytes
                .map(|b| format!("{:.0} MiB", b as f64 / (1024.0 * 1024.0)))
                .unwrap_or_else(|| "n/a".into()),
        );
        for s in &entry.shards {
            println!(
                "    shard {}  {:>9} events  util {:>5.1}%  stall {:>5.1}%",
                s.shard,
                s.events,
                s.utilization * 100.0,
                s.stall_share * 100.0,
            );
        }
        report.entries.push(entry);
    }

    // Grade against the committed baseline *before* writing anything, so
    // `--check` without `--out` can never clobber the file it compares to.
    let baseline_path = workspace_root().join("BENCH_8.json");
    let out_path = out_flag.unwrap_or_else(|| {
        if check {
            workspace_root().join("target/BENCH_fresh.json")
        } else {
            baseline_path.clone()
        }
    });
    let verdicts = if check {
        match BenchReport::load(&baseline_path) {
            Ok(baseline) => Some(report.compare(&baseline)),
            Err(e) => {
                eprintln!(
                    "perf: cannot load baseline {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    if let Err(e) = report.save(&out_path) {
        eprintln!("perf: cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    }
    println!("[saved {}]", out_path.display());

    if let Some(verdicts) = verdicts {
        println!("\nvs committed {}:", baseline_path.display());
        let mut hard_fail = false;
        for v in &verdicts {
            println!("  {}", v.line());
            hard_fail |= v.severity == Severity::Fail;
        }
        if hard_fail {
            eprintln!("perf: hard regression (slower than the baseline's fail tolerance)");
            std::process::exit(1);
        }
    }

    // The suite only measures quick schedules exactly like the committed
    // baseline when --quick is passed; remind once at the end too.
    if !args.quick && schedule == Schedule::Default {
        eprintln!("[perf: measured the full schedule; do not commit this as BENCH_8.json]");
    }
}
