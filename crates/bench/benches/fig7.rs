//! Figures 7 and 8 — Apache server internals under a small vs large worker
//! pool (`1/4/1/4`, Tomcat fixed at 60 threads / 20 connections).
//!
//! Per-second timelines of the first Apache server:
//! * processed requests (panel a/d),
//! * `PT_total` (mean worker busy time per completed request) vs
//!   `PT_connectingTomcat` (time interacting with the Tomcat tier) (b/e),
//! * `Threads_active` vs `Threads_connectingTomcat` (c/f).
//!
//! Paper: with 30 workers at 7 400 users, FIN-wait stragglers drive
//! `PT_total` peaks while `Threads_connectingTomcat` collapses (Fig. 7);
//! with 400 workers the interaction-thread count stays far above the 24
//! Tomcat threads and throughput is stable (Fig. 8).

use bench::{banner, save_json, save_text, spec};
use ntier_core::{
    run_experiment, run_experiment_traced, HardwareConfig, RunOutput, SoftAllocation, TraceConfig,
};
use ntier_trace::json::{obj, ToJson};

fn summarize(name: &str, out: &RunOutput) {
    let p = &out.apache_probes;
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let peak = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!("\n--- {name} ---");
    println!(
        "{:>28} {:>10} {:>10}",
        "series (per-second)", "mean", "peak"
    );
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        "processed req/s",
        mean(&p.processed_per_sec),
        peak(&p.processed_per_sec)
    );
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        "PT_total [ms]",
        mean(&p.pt_total_ms),
        peak(&p.pt_total_ms)
    );
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        "PT_connectingTomcat [ms]",
        mean(&p.pt_tomcat_ms),
        peak(&p.pt_tomcat_ms)
    );
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        "Threads_active",
        mean(&p.threads_active),
        peak(&p.threads_active)
    );
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        "Threads_connectingTomcat",
        mean(&p.threads_tomcat),
        peak(&p.threads_tomcat)
    );
    // A 60-second excerpt of the two thread series, like the paper's plots.
    let n = p.threads_active.len().min(60);
    println!("  60 s excerpt (active / interacting):");
    print!("  ");
    for i in 0..n {
        print!("{:>3.0}/{:<3.0}", p.threads_active[i], p.threads_tomcat[i]);
        if (i + 1) % 10 == 0 {
            print!("\n  ");
        }
    }
    println!();
}

fn main() {
    let hw = HardwareConfig::one_four_one_four();
    let small = SoftAllocation::new(30, 60, 20);
    let large = SoftAllocation::new(400, 60, 20);

    banner(
        "Figures 7/8 — Apache internals: 30 vs 400 workers, 1/4/1/4",
        "FIN-wait stragglers starve the back-end when the worker pool is small",
    );

    // `--trace` additionally captures the 30-60-20 @ 7400 run under Full
    // tracing and saves a Chrome/Perfetto trace: the FIN-wait starvation is
    // directly visible as `linger-close` spans crowding out the
    // `tomcat-interact` segments on the Apache track.
    let trace_wanted = std::env::args().any(|a| a == "--trace");

    let f7_low = run_experiment(&spec(hw, small, 6000));
    let f7_high = if trace_wanted {
        let (out, trace) = run_experiment_traced(&spec(hw, small, 7400).traced(TraceConfig::Full));
        println!(
            "\n[trace] {} spans from {} requests ({} overwritten), {} engine events",
            trace.spans.len(),
            trace.admitted,
            trace.overwritten,
            trace.engine.events_processed
        );
        save_text(
            "fig7_trace.chrome.json",
            &ntier_trace::export::to_chrome(trace.spans.iter()),
        );
        out
    } else {
        run_experiment(&spec(hw, small, 7400))
    };
    let f8 = run_experiment(&spec(hw, large, 7400));

    summarize("Fig 7(a-c): 30-60-20 @ 6000 users", &f7_low);
    summarize("Fig 7(d-f): 30-60-20 @ 7400 users", &f7_high);
    summarize("Fig 8(a-c): 400-60-20 @ 7400 users", &f8);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nConclusions:");
    println!(
        "  30 workers: interacting threads {:.1} @6000 → {:.1} @7400 (starvation)",
        mean(&f7_low.apache_probes.threads_tomcat),
        mean(&f7_high.apache_probes.threads_tomcat)
    );
    println!(
        "  400 workers @7400: interacting threads {:.1} (>> 24 = total Tomcat threads)",
        mean(&f8.apache_probes.threads_tomcat)
    );
    println!(
        "  throughput: {:.0} vs {:.0} req/s (30 vs 400 workers @7400)",
        f7_high.throughput, f8.throughput
    );

    save_json(
        "fig7_8",
        &obj([
            ("fig7_low", f7_low.apache_probes.to_json()),
            ("fig7_high", f7_high.apache_probes.to_json()),
            ("fig8", f8.apache_probes.to_json()),
        ]),
    );
}
