//! Figure 5 — over-allocation of the Tomcat DB connection pool on `1/4/1/4`.
//!
//! Apache 400 threads, Tomcat 200 threads; DB connection pool per Tomcat
//! ∈ {10, 50, 100, 200} (so the C-JDBC server carries 40–800 connection
//! threads). Shows: (a) the *smallest* pool achieves the best goodput near
//! saturation; (b) C-JDBC CPU utilization growing super-linearly with the
//! connection count; (c) total JVM garbage-collection time on C-JDBC
//! (the paper: ~1% of the runtime for 40 connections, ~10% for 800).
//!
//! Shared CLI flags (`--users`, `--quick`, `--threads`, `--store`,
//! `--metrics`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, pct_diff, plan, print_series, save_json, BenchArgs, Variant};
use ntier_core::{HardwareConfig, SoftAllocation, Tier};
use ntier_trace::json::{arr, obj};

fn main() {
    let args = BenchArgs::parse();
    let hw = args.hw_or(HardwareConfig::one_four_one_four());
    let users = args.users_or((0..7).map(|i| 6000 + i * 300).collect());
    let pools = [10usize, 50, 100, 200];

    banner(
        "Figure 5 — DB connection pool over-allocation, 1/4/1/4 (400-200-#)",
        "(a) goodput; (b) C-JDBC CPU; (c) total GC time on C-JDBC",
    );

    let mut plan = plan("fig5", &args).with_users(users.clone());
    for &p in &pools {
        plan = plan.with_variant(Variant::paper(hw, SoftAllocation::new(400, 200, p)));
    }
    let results = execute(&args, &plan);
    let sweeps: Vec<Vec<&ntier_core::RunOutput>> = (0..pools.len())
        .map(|v| results.variant_outputs(v))
        .collect();
    let labels: Vec<String> = pools.iter().map(|p| format!("400-200-{p}")).collect();

    println!("\nFig 5(a) — goodput (threshold 2 s)");
    let goodputs: Vec<Vec<f64>> = (0..pools.len())
        .map(|v| results.goodput_series(v, 2.0))
        .collect();
    print_series("users", &users, &labels, &goodputs, "goodput req/s");
    let last = users.len() - 1;
    if let Some(i) = (0..users.len()).rev().find(|&i| goodputs[3][i] > 5.0) {
        println!(
            "  @{} users: 400-200-10 is {:.0}% higher than 400-200-200 (paper: ~34%)",
            users[i],
            pct_diff(goodputs[0][i], goodputs[3][i])
        );
    }

    println!("\nFig 5(b) — C-JDBC CPU utilization [%] (includes GC)");
    let cpu: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| r.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0)
                .collect()
        })
        .collect();
    print_series("users", &users, &labels, &cpu, "CPU %");

    println!("\nFig 5(c) — total JVM GC time on C-JDBC over the measured window");
    let gc: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| r.tier_nodes(Tier::Cmw)[0].gc_seconds)
                .collect()
        })
        .collect();
    print_series("users", &users, &labels, &gc, "GC seconds");
    let window = sweeps[0][0].window_secs;
    println!(
        "  @{} users: GC fraction of the {:.0}s window: pool10 {:.1}%  pool200 {:.1}%",
        users[last],
        window,
        gc[0][last] / window * 100.0,
        gc[3][last] / window * 100.0
    );

    save_json(
        "fig5",
        &obj([
            ("users", users.into()),
            ("pools", arr(pools)),
            ("goodput_2s", goodputs.into()),
            ("cjdbc_cpu", cpu.into()),
            ("gc_seconds", gc.into()),
            ("window_secs", window.into()),
        ]),
    );
}
