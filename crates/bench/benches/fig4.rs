//! Figure 4 — under-allocation of the Tomcat thread pool on `1/2/1/2`.
//!
//! Apache threads fixed at 400, Tomcat DB connections fixed at 200; the only
//! free variable is the Tomcat thread pool ∈ {6, 10, 20, 200}. Shows:
//! (a) goodput growing with pool size — but 200 ending *below* 20;
//! (d) Tomcat CPU utilization left idle by small pools;
//! (b,c,e,f) thread-pool utilization density graphs: the small pools pile
//! probability mass at 100% (soft-resource saturation) at workloads where
//! hardware is still idle.
//!
//! Shared CLI flags (`--users`, `--quick`, `--threads`, `--store`,
//! `--metrics`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, plan, print_series, save_json, BenchArgs, Variant};
use ntier_core::{HardwareConfig, SoftAllocation, Tier};
use ntier_trace::json::{arr, obj};

fn main() {
    let args = BenchArgs::parse();
    let hw = args.hw_or(HardwareConfig::one_two_one_two());
    let users = args.users_or((0..8).map(|i| 4200 + i * 400).collect());
    let pools = [6usize, 10, 20, 200];

    banner(
        "Figure 4 — Tomcat thread-pool under-allocation, 1/2/1/2 (400-#-200)",
        "(a) goodput; (d) Tomcat CPU; (b,c,e,f) pool-utilization densities",
    );

    let mut plan = plan("fig4", &args).with_users(users.clone());
    for &p in &pools {
        plan = plan.with_variant(Variant::paper(hw, SoftAllocation::new(400, p, 200)));
    }
    let results = execute(&args, &plan);
    let sweeps: Vec<Vec<&ntier_core::RunOutput>> = (0..pools.len())
        .map(|v| results.variant_outputs(v))
        .collect();

    println!("\nFig 4(a) — goodput (threshold 2 s)");
    let labels: Vec<String> = pools.iter().map(|p| format!("400-{p}-200")).collect();
    let goodputs: Vec<Vec<f64>> = (0..pools.len())
        .map(|v| results.goodput_series(v, 2.0))
        .collect();
    print_series("users", &users, &labels, &goodputs, "goodput req/s");
    // The paper's observations: pool 20 beats pool 6 by ~40% at 6000 users,
    // and the maximum of pool 200 is below the maximum of pool 20.
    let max_of = |i: usize| goodputs[i].iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "  max goodput: pool6={:.0}  pool10={:.0}  pool20={:.0}  pool200={:.0}",
        max_of(0),
        max_of(1),
        max_of(2),
        max_of(3)
    );

    println!("\nFig 4(d) — Tomcat CPU utilization [%] (first Tomcat)");
    let cpu: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| r.tier_nodes(Tier::App)[0].cpu_util * 100.0)
                .collect()
        })
        .collect();
    print_series("users", &users, &labels, &cpu, "CPU %");

    // Density graphs: probability mass at 100% thread-pool utilization.
    println!("\nFig 4(b,c,e,f) — thread-pool saturation mass (per-second samples at 100%)");
    print!("{:>8}", "users");
    for l in &labels {
        print!(" {l:>22}");
    }
    println!("   [fraction of samples]");
    for (i, &u) in users.iter().enumerate() {
        print!("{u:>8}");
        for s in &sweeps {
            let node = &s[i].tier_nodes(Tier::App)[0];
            let mass = node
                .thread_pool
                .as_ref()
                .map(|p| p.density.saturation_mass())
                .unwrap_or(0.0);
            print!(" {:>22.3}", mass);
        }
        println!();
    }
    println!(
        "  (a pool whose saturation mass reaches ~1.0 while Tomcat CPU stays <90% is a\n   soft-resource bottleneck: invisible to hardware-only monitoring)"
    );

    save_json(
        "fig4",
        &obj([
            ("users", users.into()),
            ("pools", arr(pools)),
            ("goodput_2s", goodputs.into()),
            ("tomcat_cpu", cpu.into()),
        ]),
    );
}
