//! Figure 2 — impact of soft-resource under-allocation on `1/2/1/2`.
//!
//! Compares the conservative allocation `400-6-6` against the practitioners'
//! `400-150-60` over the workload range where the throughput curve stops
//! growing, at the paper's three SLA thresholds (0.5 s / 1 s / 2 s).
//! Paper numbers at 6 000 users: `400-150-60` goodput is ~28% higher at the
//! 2 s threshold, ~44% at 1 s, ~93% at 0.5 s.

//! CLI flags (after `--`): `--hw`, `--soft` (replaces the rule-of-thumb
//! line), `--users`, `--quick`, `--threads N`, `--store DIR` (resumable
//! artifact store), `--faults TIER[:REPLICA]@FROM[-TO]` (crash a backend
//! replica mid-sweep), and `--metrics PATH[:WINDOW_MS]` (per-window CSV
//! time series for every sweep point) — see [`bench::BenchArgs`].

use bench::{banner, execute, pct_diff, plan, print_series, save_json, variant, BenchArgs};
use ntier_core::{HardwareConfig, SoftAllocation};
use ntier_trace::json::{arr, obj, Json};

fn main() {
    let args = BenchArgs::parse();
    let hw = args.hw_or(HardwareConfig::one_two_one_two());
    let users = args.users_or((0..8).map(|i| 4200 + i * 400).collect());
    let good = args.soft_or(SoftAllocation::rule_of_thumb()); // 400-150-60
    let poor = SoftAllocation::conservative(); // 400-6-6

    banner(
        "Figure 2 — goodput under under-allocation, 1/2/1/2",
        "lines: 1/2/1/2(400-6-6) vs 1/2/1/2(400-150-60); thresholds 0.5s / 1s / 2s",
    );

    let plan = plan("fig2", &args)
        .with_users(users.clone())
        .with_variant(variant(&args, hw, poor))
        .with_variant(variant(&args, hw, good));
    let results = execute(&args, &plan);

    for (panel, thr) in [("(a)", 0.5), ("(b)", 1.0), ("(c)", 2.0)] {
        println!("\nFig 2{panel} — threshold {thr} s");
        let p = results.goodput_series(0, thr);
        let g = results.goodput_series(1, thr);
        print_series(
            "users",
            &users,
            &[format!("{hw}({poor})"), format!("{hw}({good})")],
            &[p.clone(), g.clone()],
            "goodput req/s",
        );
        // The paper quotes the gap at a workload where both allocations still
        // produce goodput; report the largest such workload.
        if let Some(i) = (0..users.len()).rev().find(|&i| p[i] > 5.0) {
            println!(
                "  @{} users: {} is {:.0}% higher than {}",
                users[i],
                good,
                pct_diff(g[i], p[i]),
                poor
            );
        }
    }

    save_json(
        "fig2",
        &obj([
            ("users", users.into()),
            (
                "good_400_150_60",
                arr(results
                    .variant_outputs(1)
                    .iter()
                    .map(|r| Json::from(r.goodput.clone()))),
            ),
            (
                "poor_400_6_6",
                arr(results
                    .variant_outputs(0)
                    .iter()
                    .map(|r| Json::from(r.goodput.clone()))),
            ),
            ("thresholds", arr([0.5, 1.0, 2.0])),
        ]),
    );
}
