//! Figure 10 — validation sweeps for the allocation algorithm.
//!
//! (a) maximum throughput vs the Tomcat thread-pool size on
//!     `1/2/1/2(400-#-200)` — the paper's optimum is 13;
//! (b) maximum throughput vs the Tomcat DB-connection-pool size on
//!     `1/4/1/4(400-200-#)` — the paper's optimum is 8.
//!
//! "Maximum throughput" = the best throughput over a workload sweep around
//! the knee, as in the paper's methodology.

use bench::{banner, run_sweep, save_json};
use ntier_core::{HardwareConfig, SoftAllocation};
use ntier_trace::json::{arr, obj};

fn max_tp(hw: HardwareConfig, soft: SoftAllocation, users: &[u32]) -> f64 {
    run_sweep(hw, soft, users)
        .iter()
        .map(|r| r.throughput)
        .fold(f64::MIN, f64::max)
}

fn main() {
    banner(
        "Figure 10 — validation of the optimal soft-resource allocation",
        "(a) max TP vs Tomcat thread pool, 1/2/1/2; (b) max TP vs DB conn pool, 1/4/1/4",
    );

    println!("\nFig 10(a) — 1/2/1/2(400-#-200), Tomcat thread pool sweep");
    let hw = HardwareConfig::one_two_one_two();
    let users = [5600u32, 6200, 6800];
    let pools_a = [6usize, 8, 10, 13, 16, 20, 40, 100, 200];
    println!("{:>10} {:>14}", "pool size", "max TP [req/s]");
    let mut series_a = Vec::new();
    for &p in &pools_a {
        let tp = max_tp(hw, SoftAllocation::new(400, p, 200), &users);
        println!("{p:>10} {tp:>14.1}");
        series_a.push(tp);
    }
    let best_a = pools_a[series_a
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty")
        .0];
    println!("  optimum ≈ {best_a} threads per Tomcat (paper: 13)");

    println!("\nFig 10(b) — 1/4/1/4(400-200-#), Tomcat DB connection pool sweep");
    let hw = HardwareConfig::one_four_one_four();
    let users = [6300u32, 6900, 7500];
    let pools_b = [1usize, 2, 3, 4, 6, 8, 10, 12, 16, 20];
    println!("{:>10} {:>14}", "pool size", "max TP [req/s]");
    let mut series_b = Vec::new();
    for &p in &pools_b {
        let tp = max_tp(hw, SoftAllocation::new(400, 200, p), &users);
        println!("{p:>10} {tp:>14.1}");
        series_b.push(tp);
    }
    let best_b = pools_b[series_b
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty")
        .0];
    println!("  optimum ≈ {best_b} DB connections per Tomcat (paper: 8)");

    save_json(
        "fig10",
        &obj([
            ("thread_pools", arr(pools_a)),
            ("max_tp_threads", series_a.into()),
            ("conn_pools", arr(pools_b)),
            ("max_tp_conns", series_b.into()),
            ("optimum_threads", best_a.into()),
            ("optimum_conns", best_b.into()),
        ]),
    );
}
