//! Figure 10 — validation sweeps for the allocation algorithm.
//!
//! (a) maximum throughput vs the Tomcat thread-pool size on
//!     `1/2/1/2(400-#-200)` — the paper's optimum is 13;
//! (b) maximum throughput vs the Tomcat DB-connection-pool size on
//!     `1/4/1/4(400-200-#)` — the paper's optimum is 8.
//!
//! "Maximum throughput" = the best throughput over a workload sweep around
//! the knee, as in the paper's methodology. Each panel is one experiment
//! plan (pool sizes = variants, knee workloads = the ramp).
//!
//! Shared CLI flags (`--quick`, `--threads`, `--store`, …) — see
//! [`bench::BenchArgs`].

use bench::{banner, execute, plan, save_json, BenchArgs, PlanResults, Variant};
use ntier_core::{HardwareConfig, SoftAllocation};
use ntier_trace::json::{arr, obj};

fn max_tp(results: &PlanResults, variant: usize) -> f64 {
    results
        .throughput_series(variant)
        .into_iter()
        .fold(f64::MIN, f64::max)
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 10 — validation of the optimal soft-resource allocation",
        "(a) max TP vs Tomcat thread pool, 1/2/1/2; (b) max TP vs DB conn pool, 1/4/1/4",
    );

    println!("\nFig 10(a) — 1/2/1/2(400-#-200), Tomcat thread pool sweep");
    let hw = HardwareConfig::one_two_one_two();
    let users = [5600u32, 6200, 6800];
    let pools_a = [6usize, 8, 10, 13, 16, 20, 40, 100, 200];
    let mut plan_a = plan("fig10a", &args).with_users(users);
    for &p in &pools_a {
        plan_a = plan_a.with_variant(Variant::paper(hw, SoftAllocation::new(400, p, 200)));
    }
    let results_a = execute(&args, &plan_a);
    println!("{:>10} {:>14}", "pool size", "max TP [req/s]");
    let mut series_a = Vec::new();
    for (v, &p) in pools_a.iter().enumerate() {
        let tp = max_tp(&results_a, v);
        println!("{p:>10} {tp:>14.1}");
        series_a.push(tp);
    }
    let best_a = pools_a[series_a
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty")
        .0];
    println!("  optimum ≈ {best_a} threads per Tomcat (paper: 13)");

    println!("\nFig 10(b) — 1/4/1/4(400-200-#), Tomcat DB connection pool sweep");
    let hw = HardwareConfig::one_four_one_four();
    let users = [6300u32, 6900, 7500];
    let pools_b = [1usize, 2, 3, 4, 6, 8, 10, 12, 16, 20];
    let mut plan_b = plan("fig10b", &args).with_users(users);
    for &p in &pools_b {
        plan_b = plan_b.with_variant(Variant::paper(hw, SoftAllocation::new(400, 200, p)));
    }
    let results_b = execute(&args, &plan_b);
    println!("{:>10} {:>14}", "pool size", "max TP [req/s]");
    let mut series_b = Vec::new();
    for (v, &p) in pools_b.iter().enumerate() {
        let tp = max_tp(&results_b, v);
        println!("{p:>10} {tp:>14.1}");
        series_b.push(tp);
    }
    let best_b = pools_b[series_b
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty")
        .0];
    println!("  optimum ≈ {best_b} DB connections per Tomcat (paper: 8)");

    save_json(
        "fig10",
        &obj([
            ("thread_pools", arr(pools_a)),
            ("max_tp_threads", series_a.into()),
            ("conn_pools", arr(pools_b)),
            ("max_tp_conns", series_b.into()),
            ("optimum_threads", best_a.into()),
            ("optimum_conns", best_b.into()),
        ]),
    );
}
