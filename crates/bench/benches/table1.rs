//! Table I — output of Algorithm 1 for `1/2/1/2` and `1/4/1/4`.
//!
//! Runs the full soft-resource allocation algorithm against the simulated
//! testbed and prints the paper's table: critical hardware resource,
//! saturation workload, per-tier RTT / TP / average jobs (Little's law),
//! `Req_ratio`, and the recommended thread/connection pool sizes. Then
//! validates the recommendation the way §IV-C does: by comparing the
//! recommended goodput against the naive strategies (one experiment plan —
//! the three static strategies plus the algorithm's pick — per hardware).
//!
//! Shared CLI flags (`--threads`, `--store`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, save_json, BenchArgs, ExperimentPlan, Variant};
use ntier_core::algorithm::{AlgorithmConfig, SoftResourceTuner};
use ntier_core::experiment::{Schedule, SimTestbed};
use ntier_core::{HardwareConfig, Tier};
use ntier_trace::json::{obj, ToJson};

fn run_for(hw: HardwareConfig) -> ntier_core::AlgorithmReport {
    let testbed = SimTestbed::new(hw, Schedule::Default);
    let cfg = AlgorithmConfig {
        step: 1000,
        small_step: 400,
        ..AlgorithmConfig::default()
    };
    SoftResourceTuner::new(testbed, cfg)
        .run()
        .expect("algorithm should expose a critical resource on this testbed")
}

fn print_report(hw: HardwareConfig, rep: &ntier_core::AlgorithmReport) {
    println!("\n=== Hardware configuration {hw} ===");
    println!(
        "Critical hardware resource : {} CPU (util {:.2})",
        rep.critical_tier, rep.critical_util
    );
    println!(
        "Saturation workload        : {} users",
        rep.saturation_workload
    );
    println!("Req_ratio                  : {:.2}", rep.req_ratio);
    println!("Pool doublings needed      : {}", rep.doublings);
    println!("Experiments used           : {}", rep.runs_used);
    println!(
        "\n{:>10} {:>10} {:>14} {:>12} {:>12}",
        "tier", "RTT [ms]", "TP/server", "jobs/server", "jobs total"
    );
    for t in &rep.per_tier {
        println!(
            "{:>10} {:>10.1} {:>14.1} {:>12.1} {:>12.1}",
            t.tier.server_name(),
            t.rtt * 1e3,
            t.tp_per_server,
            t.jobs_per_server,
            t.total_jobs
        );
    }
    println!(
        "\nRecommended allocation     : {} (web-threads - app-threads - db-conns)",
        rep.recommended
    );
}

fn validate(args: &BenchArgs, hw: HardwareConfig, rep: &ntier_core::AlgorithmReport, users: u32) {
    println!("\nValidation @ {users} users (goodput at the 2 s threshold):");
    // The three static strategies plus the algorithm's recommendation, all
    // at the saturation workload — one four-variant plan.
    let plan = ExperimentPlan::strategies(format!("table1-{hw}"), hw, [users])
        .with_variant(Variant::paper(hw, rep.recommended).labeled("algorithm"));
    let results = execute(args, &plan);
    let mut rows = Vec::new();
    for (v, variant) in plan.variants.iter().enumerate() {
        let out = results.variant_outputs(v)[0];
        println!(
            "{:>28} {:>12} goodput {:>8.1} req/s  (tp {:>8.1}, mean RT {:>6.0} ms)",
            variant.label,
            variant.soft.to_string(),
            out.goodput_at(2.0),
            out.throughput,
            out.mean_rt * 1e3,
        );
        rows.push(out.goodput_at(2.0));
    }
    let algo = *rows.last().expect("non-empty");
    let best_naive = rows[..rows.len() - 1]
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    println!(
        "  algorithm vs best naive strategy: {:+.1}%",
        (algo - best_naive) / best_naive * 100.0
    );
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Table I — output of the allocation algorithm",
        "FindCriticalResource → InferMinConcurrentJobs → CalculateMinAllocation",
    );

    let hw12 = HardwareConfig::one_two_one_two();
    let rep12 = run_for(hw12);
    print_report(hw12, &rep12);
    assert_eq!(
        rep12.critical_tier,
        Tier::App,
        "paper: Tomcat CPU is critical under 1/2/1/2"
    );
    validate(&args, hw12, &rep12, rep12.saturation_workload);

    let hw14 = HardwareConfig::one_four_one_four();
    let rep14 = run_for(hw14);
    print_report(hw14, &rep14);
    assert_eq!(
        rep14.critical_tier,
        Tier::Cmw,
        "paper: C-JDBC CPU is critical under 1/4/1/4"
    );
    validate(&args, hw14, &rep14, rep14.saturation_workload);

    save_json(
        "table1",
        &obj([("1/2/1/2", rep12.to_json()), ("1/4/1/4", rep14.to_json())]),
    );
}
