//! Figure 6 — the buffering effect of the Apache thread pool on `1/4/1/4`.
//!
//! Tomcat threads fixed at 60, DB connections at 20; the Apache worker pool
//! varies ∈ {30, 50, 100, 400}. Shows: (a) goodput increasing with the
//! Apache pool (the paper: 400 workers ~76% higher than 30 at 7 800 users);
//! (b) the non-obvious signature — C-JDBC CPU utilization **decreasing** as
//! workload increases for the small pools, because workers stuck in
//! lingering close stop feeding the back-end.
//!
//! Shared CLI flags (`--users`, `--quick`, `--threads`, `--store`,
//! `--metrics`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, pct_diff, plan, print_series, save_json, BenchArgs, Variant};
use ntier_core::{HardwareConfig, SoftAllocation, Tier};
use ntier_trace::json::{arr, obj};

fn main() {
    let args = BenchArgs::parse();
    let hw = args.hw_or(HardwareConfig::one_four_one_four());
    let users = args.users_or((0..7).map(|i| 6000 + i * 300).collect());
    let pools = [30usize, 50, 100, 400];

    banner(
        "Figure 6 — Apache thread-pool buffering effect, 1/4/1/4 (#-60-20)",
        "(a) goodput; (b) C-JDBC CPU decreasing with workload for small pools",
    );

    let mut plan = plan("fig6", &args).with_users(users.clone());
    for &p in &pools {
        plan = plan.with_variant(Variant::paper(hw, SoftAllocation::new(p, 60, 20)));
    }
    let results = execute(&args, &plan);
    let sweeps: Vec<Vec<&ntier_core::RunOutput>> = (0..pools.len())
        .map(|v| results.variant_outputs(v))
        .collect();
    let labels: Vec<String> = pools.iter().map(|p| format!("{p}-60-20")).collect();

    println!("\nFig 6(a) — goodput (threshold 2 s)");
    let goodputs: Vec<Vec<f64>> = (0..pools.len())
        .map(|v| results.goodput_series(v, 2.0))
        .collect();
    print_series("users", &users, &labels, &goodputs, "goodput req/s");
    let last = users.len() - 1;
    if let Some(i) = (0..users.len()).rev().find(|&i| goodputs[0][i] > 5.0) {
        println!(
            "  @{} users: 400-60-20 is {:.0}% higher than 30-60-20 (paper: ~76%)",
            users[i],
            pct_diff(goodputs[3][i], goodputs[0][i])
        );
    }
    println!(
        "  @{} users: throughput 400-60-20 is {:.0}% higher than 30-60-20",
        users[last],
        pct_diff(sweeps[3][last].throughput, sweeps[0][last].throughput)
    );

    println!("\nFig 6(b) — C-JDBC CPU utilization [%]");
    let cpu: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| r.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0)
                .collect()
        })
        .collect();
    print_series("users", &users, &labels, &cpu, "CPU %");
    // The paper's signature: for the small pool, utilization at the highest
    // workload is LOWER than at a moderate one.
    let small = &cpu[0];
    let peak = small.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "  30-60-20: peak C-JDBC CPU {:.1}% vs {:.1}% at {} users (drop of {:.1} points)",
        peak,
        small[last],
        users[last],
        peak - small[last]
    );

    save_json(
        "fig6",
        &obj([
            ("users", users.into()),
            ("apache_pools", arr(pools)),
            ("goodput_2s", goodputs.into()),
            ("cjdbc_cpu", cpu.into()),
        ]),
    );
}
