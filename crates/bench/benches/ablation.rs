//! Ablation benches — disable one modeled mechanism at a time and show that
//! the corresponding paper phenomenon disappears. This validates that each
//! effect in the reproduction is driven by the intended cause, not an
//! artifact of the simulator.
//!
//! * **GC ablation** — Fig. 5's over-allocation collapse must vanish when
//!   the C-JDBC JVM never collects.
//! * **Lingering-close ablation** — Fig. 6's buffering effect must vanish
//!   when connections close instantly.
//! * **Context-switch ablation** — the residual over-allocation penalty of
//!   large thread pools (Fig. 4(a): pool 200 below pool 20).

use bench::{banner, pct_diff, save_json, spec};
use ntier_core::{run_experiment, HardwareConfig, SoftAllocation, Tier};
use ntier_trace::json::obj;
use tiers::LingerConfig;

fn main() {
    banner(
        "Ablations — remove one mechanism, watch the phenomenon disappear",
        "GC → Fig.5; lingering close → Fig.6; context switching → Fig.4(a)",
    );

    // --- GC ablation -----------------------------------------------------
    let hw = HardwareConfig::one_four_one_four();
    let users = 7800;
    let big_pool = SoftAllocation::new(400, 200, 200);
    let with_gc = run_experiment(&spec(hw, big_pool, users));
    let mut s = spec(hw, big_pool, users);
    let mut cfg = s.to_config();
    // The spec pins an explicit topology, so the GC knobs live on its tier
    // specs, not on the legacy SystemConfig fields.
    cfg.cjdbc_gc = jvm_gc::GcConfig::disabled();
    cfg.tomcat_gc = jvm_gc::GcConfig::disabled();
    if let Some(topo) = &mut cfg.topology {
        for spec in &mut topo.tiers {
            spec.gc = spec.gc.as_ref().map(|_| jvm_gc::GcConfig::disabled());
        }
    }
    let no_gc = tiers::run_system(cfg);
    let gc_on = with_gc.tier_nodes(Tier::Cmw)[0].gc_seconds;
    let gc_off = no_gc.tier_nodes(Tier::Cmw)[0].gc_seconds;
    println!("\n[GC ablation] 1/4/1/4(400-200-200) @ {users} users");
    println!(
        "  with GC   : goodput@2s {:>7.1}  C-JDBC GC {:>6.1}s  cpu {:>5.1}%",
        with_gc.goodput_at(2.0),
        gc_on,
        with_gc.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0
    );
    println!(
        "  without GC: goodput@2s {:>7.1}  C-JDBC GC {:>6.1}s  cpu {:>5.1}%",
        no_gc.goodput_at(2.0),
        gc_off,
        no_gc.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0
    );
    println!(
        "  disabling GC recovers {:+.0}% goodput → the Fig.5 collapse is GC-driven",
        pct_diff(no_gc.goodput_at(2.0), with_gc.goodput_at(2.0))
    );

    // --- Lingering-close ablation ----------------------------------------
    let small_apache = SoftAllocation::new(30, 60, 20);
    let users = 7400;
    let with_linger = run_experiment(&spec(hw, small_apache, users));
    s = spec(hw, small_apache, users);
    let mut cfg = s.to_config();
    cfg.linger = LingerConfig::disabled();
    let no_linger = tiers::run_system(cfg);
    println!("\n[Lingering-close ablation] 1/4/1/4(30-60-20) @ {users} users");
    println!(
        "  with FIN-wait   : throughput {:>7.1}  C-JDBC cpu {:>5.1}%",
        with_linger.throughput,
        with_linger.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0
    );
    println!(
        "  instant close   : throughput {:>7.1}  C-JDBC cpu {:>5.1}%",
        no_linger.throughput,
        no_linger.tier_nodes(Tier::Cmw)[0].cpu_util * 100.0
    );
    println!(
        "  disabling lingering close recovers {:+.0}% throughput → Fig.6/7 is FIN-wait-driven",
        pct_diff(no_linger.throughput, with_linger.throughput)
    );

    // --- Context-switch ablation ------------------------------------------
    let hw = HardwareConfig::one_two_one_two();
    let users = 6500;
    let huge_pool = SoftAllocation::new(400, 200, 200);
    let with_csw = run_experiment(&spec(hw, huge_pool, users));
    s = spec(hw, huge_pool, users);
    let mut cfg = s.to_config();
    cfg.params.csw_overhead_per_job = 0.0;
    let no_csw = tiers::run_system(cfg);
    println!("\n[Context-switch ablation] 1/2/1/2(400-200-200) @ {users} users");
    println!(
        "  with csw overhead    : throughput {:>7.1}",
        with_csw.throughput
    );
    println!(
        "  without csw overhead : throughput {:>7.1}",
        no_csw.throughput
    );
    println!(
        "  scheduling overhead costs {:.0}% at a 200-thread pool near saturation",
        pct_diff(no_csw.throughput, with_csw.throughput)
    );

    save_json(
        "ablation",
        &obj([
            (
                "gc",
                obj([
                    ("with", with_gc.goodput_at(2.0).into()),
                    ("without", no_gc.goodput_at(2.0).into()),
                ]),
            ),
            (
                "linger",
                obj([
                    ("with", with_linger.throughput.into()),
                    ("without", no_linger.throughput.into()),
                ]),
            ),
            (
                "csw",
                obj([
                    ("with", with_csw.throughput.into()),
                    ("without", no_csw.throughput.into()),
                ]),
            ),
        ]),
    );
}
