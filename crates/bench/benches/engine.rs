//! Criterion microbenchmarks of the simulation substrate: raw event-loop
//! throughput, the processor-sharing CPU, the soft pool, the GC model, and
//! a short end-to-end system run. These guard the performance that makes
//! the 200+-trial figure sweeps tractable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simcore::{Engine, EventQueue, Model, SimTime};
use std::hint::black_box;

struct PingPong {
    remaining: u64,
    checksum: u64,
}

enum Ev {
    Ping,
}

impl Model for PingPong {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, _ev: Ev, q: &mut EventQueue<Ev>) {
        // Data-dependent delays keep the optimizer from collapsing the event
        // chain into a closed form: each delay depends on the running
        // checksum, which depends on every prior event time.
        self.checksum = self
            .checksum
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(now.as_micros());
        if self.remaining > 0 {
            self.remaining -= 1;
            q.schedule_after(SimTime::from_micros(1 + (self.checksum & 7)), Ev::Ping);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("event_chain_100k", |b| {
        b.iter(|| {
            let mut e = Engine::new(PingPong {
                remaining: black_box(EVENTS),
                checksum: black_box(1),
            });
            e.schedule(SimTime::ZERO, Ev::Ping);
            e.run_until(SimTime::MAX);
            black_box((e.events_processed(), e.model().checksum))
        })
    });
    g.finish();
}

fn bench_ps_cpu(c: &mut Criterion) {
    use resources::{CpuConfig, PsCpu};
    let mut g = c.benchmark_group("ps_cpu");
    const JOBS: u64 = 10_000;
    g.throughput(Throughput::Elements(JOBS));
    g.bench_function("submit_drain_10k", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(CpuConfig::default());
            let mut now = SimTime::ZERO;
            for j in 0..JOBS {
                cpu.submit(now, j, 0.001);
                now += SimTime::from_micros(500);
            }
            while let Some(next) = cpu.next_completion(now) {
                now = next;
                black_box(cpu.pop_due(now));
            }
            black_box(cpu.work_done())
        })
    });
    g.finish();
}

fn bench_soft_pool(c: &mut Criterion) {
    use resources::SoftPool;
    let mut g = c.benchmark_group("soft_pool");
    const OPS: u64 = 10_000;
    g.throughput(Throughput::Elements(OPS * 2));
    g.bench_function("acquire_release_contended", |b| {
        b.iter(|| {
            let mut pool = SoftPool::new("bench", 16);
            let mut t = SimTime::ZERO;
            for i in 0..OPS {
                t += SimTime::from_micros(3);
                pool.acquire(t, i);
                if i >= 16 {
                    black_box(pool.release(t));
                }
            }
            black_box(pool.in_use())
        })
    });
    g.finish();
}

fn bench_gc(c: &mut Criterion) {
    use jvm_gc::{GcConfig, JvmGc, MIB};
    let mut g = c.benchmark_group("jvm_gc");
    const ALLOCS: u64 = 100_000;
    g.throughput(Throughput::Elements(ALLOCS));
    g.bench_function("allocation_accounting_100k", |b| {
        b.iter(|| {
            let mut j = JvmGc::new(GcConfig::jdk6_server());
            j.set_conns(240);
            j.set_active(120);
            for _ in 0..ALLOCS {
                if j.on_allocation(0.1 * MIB).is_some() {
                    j.collection_finished();
                }
            }
            black_box(j.collections())
        })
    });
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    use ntier_core::{HardwareConfig, SoftAllocation, SystemConfig};
    use workload::WorkloadConfig;
    let mut g = c.benchmark_group("full_system");
    g.sample_size(10);
    g.bench_function("trial_500_users_quick", |b| {
        b.iter_batched(
            || {
                let mut cfg = SystemConfig::new(
                    HardwareConfig::one_two_one_two(),
                    SoftAllocation::rule_of_thumb(),
                    500,
                );
                cfg.workload = WorkloadConfig::quick(500);
                cfg
            },
            |cfg| black_box(tiers::run_system(cfg)),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_ps_cpu,
    bench_soft_pool,
    bench_gc,
    bench_full_system
);
criterion_main!(benches);
