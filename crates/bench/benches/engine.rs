//! Microbenchmarks of the simulation substrate: raw event-loop throughput,
//! the processor-sharing CPU, the soft pool, the GC model, and a short
//! end-to-end system run. These guard the performance that makes the
//! 200+-trial figure sweeps tractable.
//!
//! Timing uses a plain wall-clock harness (no external benchmark framework,
//! so the workspace builds offline): each benchmark is warmed up once and
//! then the best of `REPS` timed repetitions is reported — the minimum is
//! the standard low-noise estimator for deterministic workloads.

use simcore::{Engine, EventQueue, Model, SimTime};
use std::hint::black_box;
use std::time::Instant;

const REPS: u32 = 5;

/// Time `body` REPS times (after one warm-up) and report the best run.
fn bench(name: &str, elements: u64, mut body: impl FnMut()) {
    body(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rate = elements as f64 / best;
    println!(
        "{name:>32}  {:>10.3} ms   {:>12.0} elem/s",
        best * 1e3,
        rate
    );
}

struct PingPong {
    remaining: u64,
    checksum: u64,
}

enum Ev {
    Ping,
}

impl Model for PingPong {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, _ev: Ev, q: &mut EventQueue<Ev>) {
        // Data-dependent delays keep the optimizer from collapsing the event
        // chain into a closed form: each delay depends on the running
        // checksum, which depends on every prior event time.
        self.checksum = self
            .checksum
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(now.as_micros());
        if self.remaining > 0 {
            self.remaining -= 1;
            q.schedule_after(SimTime::from_micros(1 + (self.checksum & 7)), Ev::Ping);
        }
    }
}

fn bench_engine() {
    const EVENTS: u64 = 100_000;
    bench("event_chain_100k", EVENTS, || {
        let mut e = Engine::new(PingPong {
            remaining: black_box(EVENTS),
            checksum: black_box(1),
        });
        e.schedule(SimTime::ZERO, Ev::Ping);
        e.run_until(SimTime::MAX);
        black_box((e.events_processed(), e.model().checksum));
    });
}

fn bench_ps_cpu() {
    use resources::{CpuConfig, PsCpu};
    const JOBS: u64 = 10_000;
    bench("ps_cpu/submit_drain_10k", JOBS, || {
        let mut cpu = PsCpu::new(CpuConfig::default());
        let mut now = SimTime::ZERO;
        for j in 0..JOBS {
            cpu.submit(now, j, 0.001);
            now += SimTime::from_micros(500);
        }
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            black_box(cpu.pop_due(now));
        }
        black_box(cpu.work_done());
    });
}

fn bench_soft_pool() {
    use resources::SoftPool;
    const OPS: u64 = 10_000;
    bench("soft_pool/acquire_release", OPS * 2, || {
        let mut pool = SoftPool::new("bench", 16);
        let mut t = SimTime::ZERO;
        for i in 0..OPS {
            t += SimTime::from_micros(3);
            pool.acquire(t, i);
            if i >= 16 {
                black_box(pool.release(t));
            }
        }
        black_box(pool.in_use());
    });
}

fn bench_gc() {
    use jvm_gc::{GcConfig, JvmGc, MIB};
    const ALLOCS: u64 = 100_000;
    bench("jvm_gc/allocation_100k", ALLOCS, || {
        let mut j = JvmGc::new(GcConfig::jdk6_server());
        j.set_conns(240);
        j.set_active(120);
        for _ in 0..ALLOCS {
            if j.on_allocation(0.1 * MIB).is_some() {
                j.collection_finished();
            }
        }
        black_box(j.collections());
    });
}

fn bench_full_system() {
    use ntier_core::{HardwareConfig, SoftAllocation, SystemConfig};
    use workload::WorkloadConfig;
    bench("full_system/trial_500_users", 1, || {
        let mut cfg = SystemConfig::new(
            HardwareConfig::one_two_one_two(),
            SoftAllocation::rule_of_thumb(),
            500,
        );
        cfg.workload = WorkloadConfig::quick(500);
        black_box(tiers::run_system(cfg));
    });
}

fn main() {
    println!("{:>32}  {:>13}   {:>12}", "benchmark", "best time", "rate");
    bench_engine();
    bench_ps_cpu();
    bench_soft_pool();
    bench_gc();
    bench_full_system();
}
