//! Figure 3 — performance degradation due to over-allocation on `1/4/1/4`.
//!
//! The same two allocations as Figure 2, but on `1/4/1/4`, where C-JDBC is
//! the critical resource: `400-150-60` wins at moderate workload (better
//! hardware utilization), then a **crossover** appears and the conservative
//! `400-6-6` wins near saturation (smaller CPU consumption — GC and
//! scheduling — of the smaller pools). Panel (c): the response-time
//! distribution at 7 000 users.
//!
//! Shared CLI flags (`--users`, `--quick`, `--threads`, `--store`,
//! `--metrics`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, pct_diff, plan, print_series, save_json, BenchArgs, Variant};
use metrics::rt_dist::BIN_LABELS;
use ntier_core::{HardwareConfig, SoftAllocation};
use ntier_trace::json::{arr, obj, Json};

fn main() {
    let args = BenchArgs::parse();
    let hw = args.hw_or(HardwareConfig::one_four_one_four());
    let users = args.users_or((0..7).map(|i| 6000 + i * 300).collect());
    let liberal = SoftAllocation::rule_of_thumb(); // 400-150-60
    let conservative = SoftAllocation::conservative(); // 400-6-6

    banner(
        "Figure 3 — over-allocation crossover, 1/4/1/4",
        "lines: 1/4/1/4(400-6-6) vs 1/4/1/4(400-150-60); crossover expected mid-range",
    );

    // Variants 0/1 carry the ramp; variants 2/3 pin the RT-distribution
    // point of panel (c) — one plan, one engine pass.
    let plan = plan("fig3", &args)
        .with_users(users.clone())
        .with_variant(Variant::paper(hw, liberal))
        .with_variant(Variant::paper(hw, conservative))
        .with_variant(Variant::paper(hw, conservative).with_users([7000u32]))
        .with_variant(Variant::paper(hw, liberal).with_users([7000u32]));
    let results = execute(&args, &plan);

    for (panel, thr) in [("(a)", 0.5), ("(b)", 1.0)] {
        println!("\nFig 3{panel} — threshold {thr} s");
        let l = results.goodput_series(0, thr);
        let c = results.goodput_series(1, thr);
        print_series(
            "users",
            &users,
            &[format!("{hw}({conservative})"), format!("{hw}({liberal})")],
            &[c.clone(), l.clone()],
            "goodput req/s",
        );
        // Locate the crossover: first workload where conservative overtakes.
        let cross = users
            .iter()
            .zip(c.iter().zip(&l))
            .find(|(_, (c, l))| c > l)
            .map(|(u, _)| *u);
        match cross {
            Some(u) => println!("  crossover at ~{u} users"),
            None => println!("  no crossover in this range"),
        }
        if let Some(i) = (0..users.len()).rev().find(|&i| l[i] > 5.0 && c[i] > 5.0) {
            println!(
                "  @{} users: {} is {:.0}% higher than {}",
                users[i],
                conservative,
                pct_diff(c[i], l[i]),
                liberal
            );
        }
    }

    // Panel (c): RT distribution at WL 7000.
    println!("\nFig 3(c) — response-time distribution @ 7000 users");
    let out_con = results.variant_outputs(2)[0];
    let out_lib = results.variant_outputs(3)[0];
    println!("{:>10} {:>16} {:>16}", "bin", "400-6-6", "400-150-60");
    let tot = |c: &[u64; 8]| c.iter().sum::<u64>().max(1) as f64;
    let tc = tot(&out_con.rt_dist_counts);
    let tl = tot(&out_lib.rt_dist_counts);
    for (i, label) in BIN_LABELS.iter().enumerate() {
        println!(
            "{label:>10} {:>15.1}% {:>15.1}%",
            out_con.rt_dist_counts[i] as f64 / tc * 100.0,
            out_lib.rt_dist_counts[i] as f64 / tl * 100.0
        );
    }
    println!(
        "  goodput @0.2s: 400-6-6 = {:.1}, 400-150-60 = {:.1} req/s ({:+.0}%)",
        out_con.rt_dist_counts[0] as f64 / out_con.window_secs,
        out_lib.rt_dist_counts[0] as f64 / out_lib.window_secs,
        pct_diff(
            out_con.rt_dist_counts[0] as f64,
            out_lib.rt_dist_counts[0] as f64
        )
    );

    save_json(
        "fig3",
        &obj([
            ("users", users.into()),
            (
                "liberal",
                arr(results
                    .variant_outputs(0)
                    .iter()
                    .map(|r| Json::from(r.goodput.clone()))),
            ),
            (
                "conservative",
                arr(results
                    .variant_outputs(1)
                    .iter()
                    .map(|r| Json::from(r.goodput.clone()))),
            ),
            ("rt_dist_7000_conservative", arr(out_con.rt_dist_counts)),
            ("rt_dist_7000_liberal", arr(out_lib.rt_dist_counts)),
        ]),
    );
}
