//! Related-work comparison (paper §V), made quantitative:
//!
//! 1. **Analytical model (MVA)** vs the simulator: the hardware-only model
//!    matches the simulator at healthy allocations and misses the
//!    soft-resource and over-allocation effects entirely — the paper's
//!    criticism of model-based approaches.
//! 2. **Feedback control / hill climbing** vs **Algorithm 1**: goodput of
//!    the final allocation and experiments consumed.
//!
//! Shared CLI flags (`--threads`, `--store`, …) — see [`bench::BenchArgs`].

use bench::{banner, execute, plan, save_json, BenchArgs, Variant};
use ntier_core::algorithm::{AlgorithmConfig, SoftResourceTuner};
use ntier_core::experiment::{Schedule, SimTestbed};
use ntier_core::feedback::{feedback_tune, FeedbackConfig};
use ntier_core::{HardwareConfig, MvaModel, SoftAllocation};
use ntier_trace::json::{arr, obj};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Related work — analytical model and feedback control vs Algorithm 1",
        "MVA misses soft-resource effects; hill climbing costs more experiments",
    );

    // --- MVA vs simulator --------------------------------------------------
    let hw = HardwareConfig::one_two_one_two();
    let mva = MvaModel::four_tier([1, 2, 1, 2], [0.00075, 0.0024, 0.0011, 0.0019], 0.022, 7.0);
    println!("\n[MVA vs simulator] 1/2/1/2");
    println!(
        "{:>8} {:>12} {:>18} {:>18}",
        "users", "MVA X", "sim X (150 thr)", "sim X (6 thr)"
    );
    let users = [4200u32, 5000, 5800, 6600];
    let mva_plan = plan("related-work-mva", &args)
        .with_users(users)
        .with_variant(Variant::paper(hw, SoftAllocation::new(400, 150, 60)))
        .with_variant(Variant::paper(hw, SoftAllocation::new(400, 6, 6)));
    let results = execute(&args, &mva_plan);
    let healthy = results.throughput_series(0);
    let starved = results.throughput_series(1);
    let mut rows = Vec::new();
    for (i, &users) in users.iter().enumerate() {
        let m = mva.solve(users);
        println!(
            "{users:>8} {:>12.1} {:>18.1} {:>18.1}",
            m.throughput, healthy[i], starved[i]
        );
        rows.push((users, m.throughput, healthy[i], starved[i]));
    }
    println!(
        "  MVA tracks the healthy allocation but cannot see the 6-thread collapse\n\
         (no soft resources in the model) — §V's critique, quantified."
    );

    // --- Feedback control vs Algorithm 1 ------------------------------------
    println!("\n[Tuner comparison] 1/4/1/4");
    let hw = HardwareConfig::one_four_one_four();

    let algo = SoftResourceTuner::new(
        SimTestbed::new(hw, Schedule::Default),
        AlgorithmConfig {
            step: 1000,
            small_step: 400,
            ..AlgorithmConfig::default()
        },
    )
    .run()
    .expect("single bottleneck");

    let mut fb_testbed = SimTestbed::new(hw, Schedule::Default);
    let fb = feedback_tune(
        &mut fb_testbed,
        &FeedbackConfig {
            initial: SoftAllocation::new(64, 16, 16),
            users: algo.saturation_workload,
            max_runs: 32,
            ..FeedbackConfig::default()
        },
    );

    // Head-to-head validation of both final allocations: one two-point plan.
    let check = plan("related-work-validate", &args)
        .with_users([algo.saturation_workload])
        .with_variant(Variant::paper(hw, algo.recommended).labeled("algorithm"))
        .with_variant(Variant::paper(hw, fb.allocation).labeled("feedback"));
    let check = execute(&args, &check);
    let g_algo = check.goodput_series(0, 2.0)[0];
    let g_fb = check.goodput_series(1, 2.0)[0];
    println!(
        "{:>22} {:>14} {:>12} {:>12}",
        "tuner", "allocation", "goodput@2s", "experiments"
    );
    println!(
        "{:>22} {:>14} {:>12.1} {:>12}",
        "Algorithm 1",
        algo.recommended.to_string(),
        g_algo,
        algo.runs_used
    );
    println!(
        "{:>22} {:>14} {:>12.1} {:>12}",
        "feedback hill-climb",
        fb.allocation.to_string(),
        g_fb,
        fb.runs_used
    );
    println!(
        "  Algorithm 1 reaches {:+.1}% goodput relative to the controller.",
        (g_algo - g_fb) / g_fb * 100.0
    );

    save_json(
        "related_work",
        &obj([
            (
                "mva_rows",
                arr(rows.iter().map(|&(users, mva_x, healthy_x, starved_x)| {
                    obj([
                        ("users", users.into()),
                        ("mva_x", mva_x.into()),
                        ("sim_healthy_x", healthy_x.into()),
                        ("sim_starved_x", starved_x.into()),
                    ])
                })),
            ),
            (
                "algorithm",
                obj([
                    ("alloc", algo.recommended.to_string().into()),
                    ("goodput", g_algo.into()),
                    ("runs", algo.runs_used.into()),
                ]),
            ),
            (
                "feedback",
                obj([
                    ("alloc", fb.allocation.to_string().into()),
                    ("goodput", g_fb.into()),
                    ("runs", fb.runs_used.into()),
                ]),
            ),
        ]),
    );
}
