//! Rendering: diffs as plain text / markdown, and gnuplot artifacts.
//!
//! The rendered [`Report`] is the human-facing face of a [`RunDiff`]: a
//! verdict banner, the per-workload delta table, the USL fits, and one line
//! per shape check. [`write_gnuplot`] regenerates the `.dat`/`.gp` pair
//! under the workspace root's `target/paper-results/report/` so the
//! comparison can be replotted with stock gnuplot — same convention as the
//! figure harnesses' JSON artifacts.

use std::fs;
use std::io;
use std::path::PathBuf;

use crate::diff::RunDiff;
use crate::workspace_root;

/// A rendered report: title plus markdown body (plain text is the same
/// content with the markup stripped down — the body avoids any markup that
/// reads badly in a terminal).
#[derive(Debug, Clone)]
pub struct Report {
    /// Report heading.
    pub title: String,
    /// Markdown body lines.
    pub lines: Vec<String>,
    /// Whether every shape check passed.
    pub passed: bool,
}

impl Report {
    /// Render a before/after diff.
    pub fn from_diff(title: impl Into<String>, diff: &RunDiff) -> Report {
        let checks = diff.shape_checks();
        let passed = checks.iter().all(|c| c.passed);
        let mut lines = Vec::new();
        lines.push(format!(
            "Comparing `{}` (before) vs `{}` (after).",
            diff.before.label, diff.after.label
        ));
        if let Some(pct) = diff.peak_delta_pct() {
            lines.push(format!("Peak throughput: {pct:+.1}%."));
        }
        lines.push(String::new());
        lines.push("| users | before (req/s) | after (req/s) | delta |".into());
        lines.push("|------:|---------------:|--------------:|------:|".into());
        for &(users, b, a) in &diff.deltas {
            let delta = if b > 0.0 {
                format!("{:+.1}%", (a - b) / b * 100.0)
            } else {
                "n/a".into()
            };
            lines.push(format!("| {users} | {b:.1} | {a:.1} | {delta} |"));
        }
        lines.push(String::new());
        for (label, usl) in [
            (&diff.before.label, diff.before.usl),
            (&diff.after.label, diff.after.usl),
        ] {
            match usl {
                Some(f) => lines.push(format!(
                    "USL `{label}`: lambda {:.3}, sigma {:.4}, kappa {:.2e}{}",
                    f.lambda,
                    f.sigma,
                    f.kappa,
                    f.knee()
                        .map(|k| format!(", knee {:.0} users", k))
                        .unwrap_or_else(|| ", no knee".into())
                )),
                None => lines.push(format!("USL `{label}`: not fittable")),
            }
        }
        lines.push(String::new());
        lines.push("Shape checks:".into());
        for c in &checks {
            lines.push(format!(
                "- {} **{}** — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            ));
        }
        Report {
            title: title.into(),
            lines,
            passed,
        }
    }

    /// The report as markdown.
    pub fn markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&format!(
            "\nVerdict: **{}**\n",
            if self.passed { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// The report as terminal-friendly plain text.
    pub fn plain_text(&self) -> String {
        let md = self.markdown();
        md.replace("## ", "").replace("**", "").replace('`', "")
    }
}

/// Write the gnuplot artifact pair for a diff: `<name>.dat` (three columns:
/// users, before, after) and `<name>.gp` (a plot script referencing it),
/// both under `<workspace>/target/paper-results/report/`. Returns the two
/// paths written.
pub fn write_gnuplot(diff: &RunDiff, name: &str) -> io::Result<Vec<PathBuf>> {
    let dir = workspace_root().join("target/paper-results/report");
    fs::create_dir_all(&dir)?;
    let dat = dir.join(format!("{name}.dat"));
    let gp = dir.join(format!("{name}.gp"));
    let mut data = format!("# users  {}  {}\n", diff.before.label, diff.after.label);
    for &(users, b, a) in &diff.deltas {
        data.push_str(&format!("{users} {b:.3} {a:.3}\n"));
    }
    fs::write(&dat, data)?;
    let script = format!(
        "set title '{name}: before vs after'\n\
         set xlabel 'concurrent users'\n\
         set ylabel 'throughput (req/s)'\n\
         set key left top\n\
         set term pngcairo size 900,600\n\
         set output '{name}.png'\n\
         plot '{dat}' using 1:2 with linespoints title '{before}', \\\n\
         \x20    '{dat}' using 1:3 with linespoints title '{after}'\n",
        name = name,
        dat = dat
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("diff.dat"),
        before = diff.before.label,
        after = diff.after.label,
    );
    fs::write(&gp, script)?;
    Ok(vec![dat, gp])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{SweepPoint, SweepSummary};
    use crate::usl::UslFit;
    use tiers::Tier;

    fn sweep(label: &str, pts: &[(u32, f64)]) -> SweepSummary {
        let points = pts
            .iter()
            .map(|&(users, tp)| SweepPoint {
                users,
                throughput: tp,
                goodput: tp,
                critical: (Tier::Db, 0, 0.85),
            })
            .collect();
        let curve: Vec<(f64, f64)> = pts.iter().map(|&(u, t)| (u as f64, t)).collect();
        SweepSummary {
            label: label.into(),
            points,
            usl: UslFit::fit(&curve),
        }
    }

    fn demo_diff() -> RunDiff {
        RunDiff::compute(
            sweep("conservative", &[(100, 50.0), (400, 120.0), (800, 110.0)]),
            sweep("rule-of-thumb", &[(100, 55.0), (400, 160.0), (800, 170.0)]),
        )
    }

    #[test]
    fn markdown_report_carries_table_and_verdicts() {
        let report = Report::from_diff("demo", &demo_diff());
        let md = report.markdown();
        assert!(md.contains("## demo"));
        assert!(md.contains("| 400 | 120.0 | 160.0 |"));
        assert!(md.contains("knee-location"));
        assert!(md.contains("critical-tier"));
        assert!(md.contains("curve-direction"));
        assert!(md.contains("Verdict: **PASS**"), "{md}");
        let plain = report.plain_text();
        assert!(!plain.contains("**"));
        assert!(plain.contains("Verdict: PASS"));
    }

    #[test]
    fn gnuplot_artifacts_land_under_the_workspace_root() {
        let diff = demo_diff();
        let paths = write_gnuplot(&diff, "render-test").expect("writes");
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.starts_with(workspace_root().join("target")), "{p:?}");
            assert!(p.exists());
        }
        let dat = fs::read_to_string(&paths[0]).expect("reads");
        assert!(dat.contains("400 120.000 160.000"));
        let gp = fs::read_to_string(&paths[1]).expect("reads");
        assert!(gp.contains("render-test.dat"));
        for p in paths {
            let _ = fs::remove_file(p);
        }
    }
}
