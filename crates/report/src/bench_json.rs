//! The committed perf-trajectory format (`BENCH_8.json`).
//!
//! The `perf` binary in `ntier-bench` runs a fixed suite and writes one
//! [`BenchReport`]: schema-versioned, fingerprinted (OS/arch/cores), one
//! [`BenchEntry`] per suite member with events/sec, wall-clock, event count,
//! and peak RSS. The copy committed at the workspace root is the repo's
//! performance trajectory; CI regenerates a fresh one and [`BenchReport::
//! compare`] grades the regression: events/sec is the primary metric,
//! `warn_ratio`/`fail_ratio` bound how much slower the current run may be
//! before the comparison warns or fails. Shared CI runners are noisy, so
//! the suite is graded on ratios with generous tolerances rather than
//! absolute numbers.

use std::fs;
use std::path::Path;

use ntier_trace::json::{obj, Json};

use crate::ReportError;

/// Schema version of the committed bench JSON. Bump on breaking changes so
/// `compare` can refuse mismatched baselines instead of mis-reading them.
/// Version 2 added per-shard load rows (`BenchEntry::shards`) for the
/// horizon-sharded `--par-run` suite members.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// The machine a report was measured on. Informational: comparisons never
/// gate on the fingerprint, but a cross-machine diff should be read with
/// the fingerprints side by side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism at capture time.
    pub cpus: u64,
}

impl Fingerprint {
    /// Capture the current machine's fingerprint.
    pub fn capture() -> Fingerprint {
        Fingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// One suite member's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Suite member name (e.g. `fig2`, `stress`).
    pub name: String,
    /// Events processed across the member's runs.
    pub events: u64,
    /// Wall-clock seconds of simulation (sum over the member's runs).
    pub wall_secs: f64,
    /// Events per wall-clock second — the graded metric.
    pub events_per_sec: f64,
    /// Peak RSS in bytes after the member ran (`None` off Linux). VmHWM is
    /// a process-wide high-water mark, so within one report it is
    /// monotone across entries in run order.
    pub peak_rss_bytes: Option<u64>,
    /// Per-shard load rows of a `--par-run` member (empty for serial
    /// members). Informational — comparisons grade only `events_per_sec` —
    /// but committed so the parallel trajectory records *where* wall-clock
    /// went: work inside rounds vs. stall at the round barriers.
    pub shards: Vec<ShardEntry>,
}

/// One shard's load attribution within a parallel suite member.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardEntry {
    /// Shard index (0 = front shard).
    pub shard: u64,
    /// Events the shard processed.
    pub events: u64,
    /// Fraction of the member's wall-clock the shard spent busy in rounds.
    pub utilization: f64,
    /// Fraction of the member's wall-clock the shard spent stalled at
    /// round barriers (the horizon-stall share).
    pub stall_share: f64,
}

/// Severity of one entry's comparison against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Within tolerance.
    Ok,
    /// Slower than `warn_ratio` allows (or the entry is new/missing).
    Warn,
    /// Slower than `fail_ratio` allows — a hard regression.
    Fail,
}

/// One entry's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Suite member name.
    pub name: String,
    /// Baseline events/sec (`None` when the entry is new).
    pub baseline_eps: Option<f64>,
    /// Current events/sec (`None` when the entry disappeared).
    pub current_eps: Option<f64>,
    /// Slowdown ratio `baseline / current` (> 1 means slower), when both
    /// sides exist.
    pub ratio: Option<f64>,
    /// Graded severity.
    pub severity: Severity,
}

impl BenchComparison {
    /// One-line rendering for CI logs.
    pub fn line(&self) -> String {
        let grade = match self.severity {
            Severity::Ok => "ok  ",
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        };
        match (self.baseline_eps, self.current_eps, self.ratio) {
            (Some(b), Some(c), Some(r)) => format!(
                "{grade} {:<12} {:>12.0} -> {:>12.0} ev/s  ({:.2}x {})",
                self.name,
                b,
                c,
                r.max(1.0 / r),
                if r > 1.0 { "slower" } else { "faster or equal" }
            ),
            (None, Some(c), _) => {
                format!(
                    "{grade} {:<12} new entry at {c:.0} ev/s (no baseline)",
                    self.name
                )
            }
            (Some(b), None, _) => {
                format!(
                    "{grade} {:<12} missing (baseline had {b:.0} ev/s)",
                    self.name
                )
            }
            _ => format!("{grade} {:<12} no data", self.name),
        }
    }
}

/// A full perf-trajectory report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] when written by this code).
    pub schema: u64,
    /// Machine the report was measured on.
    pub fingerprint: Fingerprint,
    /// Whether the suite ran on the quick schedule (the committed baseline
    /// always does).
    pub quick: bool,
    /// Tolerances the baseline was committed with: slowdown ratios at which
    /// a comparison warns / fails.
    pub warn_ratio: f64,
    /// Hard-failure slowdown ratio.
    pub fail_ratio: f64,
    /// One entry per suite member, in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// A new report for the current machine with the default tolerances
    /// (warn at 1.5× slower, fail at 2× — generous because CI runners are
    /// shared and noisy).
    pub fn new(quick: bool) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            fingerprint: Fingerprint::capture(),
            quick,
            warn_ratio: 1.5,
            fail_ratio: 2.0,
            entries: Vec::new(),
        }
    }

    /// Serialize to the committed JSON form.
    pub fn to_json(&self) -> Json {
        obj([
            ("schema", Json::UInt(self.schema)),
            (
                "fingerprint",
                obj([
                    ("os", Json::Str(self.fingerprint.os.clone())),
                    ("arch", Json::Str(self.fingerprint.arch.clone())),
                    ("cpus", Json::UInt(self.fingerprint.cpus)),
                ]),
            ),
            ("quick", Json::Bool(self.quick)),
            ("warn_ratio", Json::Num(self.warn_ratio)),
            ("fail_ratio", Json::Num(self.fail_ratio)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            obj([
                                ("name", Json::Str(e.name.clone())),
                                ("events", Json::UInt(e.events)),
                                ("wall_secs", Json::Num(e.wall_secs)),
                                ("events_per_sec", Json::Num(e.events_per_sec)),
                                (
                                    "peak_rss_bytes",
                                    e.peak_rss_bytes.map_or(Json::Null, Json::UInt),
                                ),
                                (
                                    "shards",
                                    Json::Arr(
                                        e.shards
                                            .iter()
                                            .map(|s| {
                                                obj([
                                                    ("shard", Json::UInt(s.shard)),
                                                    ("events", Json::UInt(s.events)),
                                                    ("utilization", Json::Num(s.utilization)),
                                                    ("stall_share", Json::Num(s.stall_share)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a report, validating the schema version.
    pub fn from_json(v: &Json) -> Result<BenchReport, ReportError> {
        let err = |msg: &str| ReportError::Parse(msg.to_string());
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing 'schema'"))?;
        if schema != BENCH_SCHEMA_VERSION {
            return Err(ReportError::Parse(format!(
                "bench schema {schema} unsupported (expected {BENCH_SCHEMA_VERSION})"
            )));
        }
        let fp = v
            .get("fingerprint")
            .ok_or_else(|| err("missing 'fingerprint'"))?;
        let fingerprint = Fingerprint {
            os: fp
                .get("os")
                .and_then(Json::as_str)
                .ok_or_else(|| err("fingerprint missing 'os'"))?
                .to_string(),
            arch: fp
                .get("arch")
                .and_then(Json::as_str)
                .ok_or_else(|| err("fingerprint missing 'arch'"))?
                .to_string(),
            cpus: fp.get("cpus").and_then(Json::as_u64).unwrap_or(1),
        };
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'entries'"))?
            .iter()
            .map(|e| -> Result<BenchEntry, ReportError> {
                Ok(BenchEntry {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("entry missing 'name'"))?
                        .to_string(),
                    events: e.get("events").and_then(Json::as_u64).unwrap_or(0),
                    wall_secs: e
                        .get("wall_secs")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| err("entry missing 'wall_secs'"))?,
                    events_per_sec: e
                        .get("events_per_sec")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| err("entry missing 'events_per_sec'"))?,
                    peak_rss_bytes: e.get("peak_rss_bytes").and_then(Json::as_u64),
                    shards: e
                        .get("shards")
                        .and_then(Json::as_arr)
                        .map(|rows| {
                            rows.iter()
                                .map(|s| ShardEntry {
                                    shard: s.get("shard").and_then(Json::as_u64).unwrap_or(0),
                                    events: s.get("events").and_then(Json::as_u64).unwrap_or(0),
                                    utilization: s
                                        .get("utilization")
                                        .and_then(Json::as_f64)
                                        .unwrap_or(0.0),
                                    stall_share: s
                                        .get("stall_share")
                                        .and_then(Json::as_f64)
                                        .unwrap_or(0.0),
                                })
                                .collect()
                        })
                        .unwrap_or_default(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema,
            fingerprint,
            quick: v.get("quick").and_then(Json::as_bool).unwrap_or(false),
            warn_ratio: v.get("warn_ratio").and_then(Json::as_f64).unwrap_or(1.5),
            fail_ratio: v.get("fail_ratio").and_then(Json::as_f64).unwrap_or(2.0),
            entries,
        })
    }

    /// Load a report from disk.
    pub fn load(path: &Path) -> Result<BenchReport, ReportError> {
        let text = fs::read_to_string(path)?;
        let json = Json::parse(&text)
            .map_err(|e| ReportError::Parse(format!("{}: {e}", path.display())))?;
        BenchReport::from_json(&json)
    }

    /// Write the report to disk (pretty, trailing newline — diff-friendly
    /// for the committed baseline).
    pub fn save(&self, path: &Path) -> Result<(), ReportError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        fs::write(path, text)?;
        Ok(())
    }

    /// Grade this (current) report against a committed baseline, using the
    /// *baseline's* tolerances. Entries are matched by name; new entries
    /// and entries that disappeared grade `Warn`.
    pub fn compare(&self, baseline: &BenchReport) -> Vec<BenchComparison> {
        let mut out = Vec::new();
        for b in &baseline.entries {
            let current = self.entries.iter().find(|e| e.name == b.name);
            match current {
                Some(c) if c.events_per_sec > 0.0 => {
                    let ratio = b.events_per_sec / c.events_per_sec;
                    let severity = if ratio > baseline.fail_ratio {
                        Severity::Fail
                    } else if ratio > baseline.warn_ratio {
                        Severity::Warn
                    } else {
                        Severity::Ok
                    };
                    out.push(BenchComparison {
                        name: b.name.clone(),
                        baseline_eps: Some(b.events_per_sec),
                        current_eps: Some(c.events_per_sec),
                        ratio: Some(ratio),
                        severity,
                    });
                }
                _ => out.push(BenchComparison {
                    name: b.name.clone(),
                    baseline_eps: Some(b.events_per_sec),
                    current_eps: None,
                    ratio: None,
                    severity: Severity::Warn,
                }),
            }
        }
        for c in &self.entries {
            if !baseline.entries.iter().any(|b| b.name == c.name) {
                out.push(BenchComparison {
                    name: c.name.clone(),
                    baseline_eps: None,
                    current_eps: Some(c.events_per_sec),
                    ratio: None,
                    severity: Severity::Warn,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            events: 1_000_000,
            wall_secs: 1_000_000.0 / eps,
            events_per_sec: eps,
            peak_rss_bytes: Some(64 << 20),
            shards: Vec::new(),
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        let mut r = BenchReport::new(true);
        r.entries = entries;
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = report(vec![entry("fig2", 2.0e6), entry("stress", 1.5e6)]);
        let back = BenchReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn shard_rows_round_trip() {
        let mut e = entry("stress1m-par4", 1.0e6);
        e.shards = vec![
            ShardEntry {
                shard: 0,
                events: 800_000,
                utilization: 0.9,
                stall_share: 0.05,
            },
            ShardEntry {
                shard: 1,
                events: 200_000,
                utilization: 0.3,
                stall_share: 0.65,
            },
        ];
        let r = report(vec![e]);
        let back = BenchReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        // Serial entries (no shard rows) keep an empty list through the trip.
        let serial = report(vec![entry("stress1m", 1.0e6)]);
        let back = BenchReport::from_json(&serial.to_json()).expect("parses");
        assert!(back.entries[0].shards.is_empty());
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_misread() {
        let mut j = report(vec![entry("fig2", 1.0e6)]).to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::UInt(999);
        }
        assert!(BenchReport::from_json(&j).is_err());
    }

    #[test]
    fn compare_grades_by_the_baseline_tolerances() {
        let baseline = report(vec![
            entry("fast", 2.0e6),
            entry("warned", 2.0e6),
            entry("failed", 2.0e6),
            entry("gone", 2.0e6),
        ]);
        let current = report(vec![
            entry("fast", 1.9e6),   // 1.05x slower: ok
            entry("warned", 1.2e6), // 1.67x slower: warn
            entry("failed", 0.9e6), // 2.2x slower: fail
            entry("new", 1.0e6),    // not in baseline: warn
        ]);
        let cmp = current.compare(&baseline);
        let sev = |name: &str| cmp.iter().find(|c| c.name == name).unwrap().severity;
        assert_eq!(sev("fast"), Severity::Ok);
        assert_eq!(sev("warned"), Severity::Warn);
        assert_eq!(sev("failed"), Severity::Fail);
        assert_eq!(sev("gone"), Severity::Warn);
        assert_eq!(sev("new"), Severity::Warn);
        for c in &cmp {
            assert!(!c.line().is_empty());
        }
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let path = std::env::temp_dir().join(format!("bench-json-{}.json", std::process::id()));
        let r = report(vec![entry("fig2", 2.5e6)]);
        r.save(&path).expect("saves");
        let back = BenchReport::load(&path).expect("loads");
        assert_eq!(back, r);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_captures_this_machine() {
        let fp = Fingerprint::capture();
        assert!(!fp.os.is_empty());
        assert!(!fp.arch.is_empty());
        assert!(fp.cpus >= 1);
    }
}
