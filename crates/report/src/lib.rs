//! # ntier-report — performance observability over executed experiments
//!
//! The crates below this one *produce* runs: `ntier-lab` executes
//! content-addressed experiment plans and persists each point in a
//! manifest-backed [`ArtifactStore`](ntier_lab::ArtifactStore). This crate
//! *consumes* them:
//!
//! 1. **Run diffs** — [`load_sweep`] loads one variant's sweep back out of
//!    a store by manifest (returning errors, never panicking, on corrupt or
//!    missing artifacts); [`RunDiff::compute`] turns a before/after pair
//!    into structured deltas plus in-code [`ShapeCheck`] verdicts: knee
//!    location (via a Universal-Scalability-Law fit, [`UslFit`]),
//!    critical-tier identity, and curve direction.
//! 2. **Rendering** — [`Report`] renders a diff as plain text or markdown,
//!    and [`render::write_gnuplot`] regenerates `.dat`/`.gp` artifacts
//!    under the workspace root's `target/paper-results/report/`;
//!    [`flamegraph::write_flamegraph`] renders a flight-recorder summary
//!    there too, as folded stacks plus a self-contained critical-path
//!    icicle script.
//! 3. **Perf trajectory** — [`BenchReport`] is the schema-versioned format
//!    of the committed `BENCH_8.json`: per-suite events/sec, wall-clock,
//!    and peak RSS with a machine fingerprint and regression tolerances,
//!    written and checked by the `perf` binary in `ntier-bench`.
//! 4. **Doc regeneration** — [`experiments::patch_marked_section`] splices
//!    auto-generated headline numbers into `EXPERIMENTS.md` between
//!    markers, leaving the hand-written prose untouched.
//!
//! Everything here is read-side observability: nothing in this crate
//! schedules events, draws randomness, or otherwise perturbs simulations.

pub mod bench_json;
pub mod diff;
pub mod experiments;
pub mod flamegraph;
pub mod render;
pub mod usl;

pub use bench_json::{
    BenchComparison, BenchEntry, BenchReport, Fingerprint, Severity, ShardEntry,
    BENCH_SCHEMA_VERSION,
};
pub use diff::{
    check_shape, classify_curve, load_sweep, CurveShape, RunDiff, ShapeCheck, SweepPoint,
    SweepSummary,
};
pub use flamegraph::{folded_stacks, write_flamegraph};
pub use render::{write_gnuplot, Report};
pub use usl::UslFit;

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong while reporting. Reporting is diagnostics,
/// not simulation — a corrupt store or a malformed baseline must surface as
/// an error the caller can print, never a panic.
#[derive(Debug)]
pub enum ReportError {
    /// Underlying filesystem or store error.
    Io(io::Error),
    /// A required run point is not in the store manifest.
    MissingPoint {
        /// Content address of the missing point.
        digest: u64,
        /// Its plan label.
        label: String,
    },
    /// A JSON document (bench baseline, manifest) did not parse or did not
    /// match the expected schema.
    Parse(String),
    /// The data loaded fine but cannot support the requested analysis
    /// (e.g. a sweep with fewer than two points cannot be knee-fitted).
    Shape(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "{e}"),
            ReportError::MissingPoint { digest, label } => {
                write!(
                    f,
                    "point {label} ({digest:016x}) is not in the store manifest"
                )
            }
            ReportError::Parse(msg) => write!(f, "parse error: {msg}"),
            ReportError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<io::Error> for ReportError {
    fn from(e: io::Error) -> Self {
        ReportError::Io(e)
    }
}

/// The workspace root, independent of the current working directory.
/// Report and bench artifacts are always anchored here so `BENCH_8.json`
/// and `target/paper-results/report/` land in the same place whether a
/// binary runs from the workspace root, a package directory, or CI.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_the_cargo_workspace() {
        assert!(workspace_root().join("Cargo.toml").exists());
        assert!(workspace_root().join("crates/report").exists());
    }

    #[test]
    fn errors_render_their_context() {
        let e = ReportError::MissingPoint {
            digest: 0xab,
            label: "conservative@400".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("conservative@400"));
        assert!(msg.contains("00000000000000ab"));
        assert!(ReportError::Parse("x".into()).to_string().contains("x"));
    }
}
