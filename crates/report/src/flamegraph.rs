//! Critical-path flamegraph artifacts from a flight-recorder summary.
//!
//! The flight recorder partitions every classified request's latency into
//! the fixed attribution taxonomy (`ntier_trace::Bucket`). This module
//! renders the run-aggregate partition two ways:
//!
//! * [`folded_stacks`] — the classic folded-stack format
//!   (`frame;frame;frame count`), one line per non-empty bucket with the
//!   two-level stack `request;<group>;<bucket>` and the microsecond total
//!   as the count. Directly consumable by standard flamegraph tooling.
//! * [`write_flamegraph`] — writes `<name>.dat` (the folded stacks) and a
//!   **self-contained** `<name>.gp` under
//!   `<workspace>/target/paper-results/report/`: the gnuplot script draws
//!   the two-level icicle with pre-computed rectangles (no data-file
//!   parsing, no gnuplot arithmetic), so `gnuplot <name>.gp` reproduces
//!   the figure from the script alone.
//!
//! Like the rest of this crate, everything here is read-side: the summary
//! was captured passively during the run and is only formatted here.

use std::fs;
use std::io;
use std::path::PathBuf;

use ntier_trace::{Attribution, Bucket, FlightSummary};

use crate::workspace_root;

/// Fill color of a bucket's rectangle, keyed by its taxonomy group so the
/// icicle reads at a glance: green = useful service, orange = soft-resource
/// pool waits, pink = contention (run-queue/GC), gray = wire + retry
/// overhead.
fn color(b: Bucket) -> &'static str {
    match b.group() {
        "service" => "#66c2a5",
        "pool-wait" => "#fc8d62",
        "contention" => "#e78ac3",
        _ => "#b3b3b3",
    }
}

/// Group frames in display order (canonical bucket order groups them
/// contiguously, so this is the order groups first appear in
/// [`Bucket::ALL`]).
fn groups() -> Vec<&'static str> {
    let mut out = Vec::new();
    for b in Bucket::ALL {
        if !out.contains(&b.group()) {
            out.push(b.group());
        }
    }
    out
}

/// Run-aggregate folded stacks: `request;<group>;<bucket> <micros>`, one
/// line per non-empty bucket in canonical order. Zero-latency summaries
/// yield an empty string.
pub fn folded_stacks(summary: &FlightSummary) -> String {
    let profile = summary.profile();
    let mut out = String::new();
    for b in Bucket::ALL {
        let us = profile.get(b);
        if us > 0 {
            out.push_str(&format!("request;{};{} {}\n", b.group(), b.label(), us));
        }
    }
    out
}

/// Append the rectangle + (width permitting) label of one icicle cell to
/// the gnuplot script. `x` is the cell's horizontal extent in [0, 1], `y`
/// its row band.
fn cell(
    script: &mut String,
    id: &mut usize,
    x: (f64, f64),
    y: (f64, f64),
    label: &str,
    fill: &'static str,
) {
    let ((x0, x1), (y0, y1)) = (x, y);
    *id += 1;
    script.push_str(&format!(
        "set object {id} rect from {x0:.6},{y0} to {x1:.6},{y1} fc rgb '{fill}' fs solid 0.9 border rgb '#333333'\n"
    ));
    // Label only cells wide enough to hold text at the default term size.
    if x1 - x0 >= 0.06 {
        *id += 1;
        script.push_str(&format!(
            "set label {id} '{label}' at {:.6},{:.2} center font ',9'\n",
            (x0 + x1) / 2.0,
            (y0 + y1) / 2.0,
        ));
    }
}

/// Build the self-contained gnuplot icicle script for an aggregate
/// attribution profile. Top row: taxonomy groups; bottom row: buckets,
/// both width-proportional to their share of total classified latency.
fn icicle_script(name: &str, profile: &Attribution) -> String {
    let total = profile.total_micros().max(1) as f64;
    let mut script = format!(
        "set title '{name}: critical-path attribution ({:.3} s classified latency)'\n\
         unset key\nunset xtics\nunset ytics\nunset border\n\
         set xrange [0:1]\nset yrange [0:2.2]\n\
         set term pngcairo size 1000,320\nset output '{name}.png'\n",
        profile.latency_micros as f64 / 1e6
    );
    let mut id = 0;
    // Top row: groups.
    let mut x = 0.0;
    for g in groups() {
        let us: u64 = Bucket::ALL
            .iter()
            .filter(|b| b.group() == g)
            .map(|&b| profile.get(b))
            .sum();
        if us == 0 {
            continue;
        }
        let w = us as f64 / total;
        let fill = color(
            Bucket::ALL
                .into_iter()
                .find(|b| b.group() == g)
                .expect("group from Bucket::ALL"),
        );
        cell(&mut script, &mut id, (x, x + w), (1.1, 2.1), g, fill);
        x += w;
    }
    // Bottom row: buckets, grouped contiguously under their group cells.
    let mut x = 0.0;
    for g in groups() {
        for b in Bucket::ALL.into_iter().filter(|b| b.group() == g) {
            let us = profile.get(b);
            if us == 0 {
                continue;
            }
            let w = us as f64 / total;
            cell(
                &mut script,
                &mut id,
                (x, x + w),
                (0.0, 1.0),
                b.label(),
                color(b),
            );
            x += w;
        }
    }
    script.push_str("plot -1 notitle\n");
    script
}

/// Write `<name>.dat` (folded stacks) and the self-contained `<name>.gp`
/// icicle under `<workspace>/target/paper-results/report/`. Returns the two
/// paths written.
pub fn write_flamegraph(summary: &FlightSummary, name: &str) -> io::Result<Vec<PathBuf>> {
    let dir = workspace_root().join("target/paper-results/report");
    fs::create_dir_all(&dir)?;
    let dat = dir.join(format!("{name}.dat"));
    let gp = dir.join(format!("{name}.gp"));
    fs::write(&dat, folded_stacks(summary))?;
    fs::write(&gp, icicle_script(name, &summary.profile()))?;
    Ok(vec![dat, gp])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntier_trace::FlightWindow;
    use simcore::SimTime;

    fn summary() -> FlightSummary {
        let mut profile = Attribution::default();
        profile.micros[Bucket::ConnPoolWait.index()] = 750_000;
        profile.micros[Bucket::DbService.index()] = 200_000;
        profile.micros[Bucket::Wire.index()] = 50_000;
        profile.latency_micros = 1_000_000;
        FlightSummary {
            window: SimTime::from_millis(100),
            origin: SimTime::ZERO,
            classified: 1,
            windows: vec![FlightWindow {
                index: 0,
                completed: 1,
                failures: 0,
                profile,
                exemplars: Vec::new(),
                truncated: false,
            }],
        }
    }

    #[test]
    fn folded_stacks_list_nonzero_buckets_in_canonical_order() {
        let folded = folded_stacks(&summary());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            [
                "request;service;db-service 200000",
                "request;pool-wait;conn-pool-wait 750000",
                "request;overhead;wire 50000",
            ]
        );
    }

    #[test]
    fn icicle_script_is_self_contained() {
        let gp = icicle_script("fg-test", &summary().profile());
        // Rectangles are pre-computed — the script reads no data file.
        assert!(gp.contains("set object"));
        assert!(!gp.contains(".dat"));
        // The dominant cell (75% pool wait) is wide enough to be labeled.
        assert!(gp.contains("conn-pool-wait"));
        // Widths are fractions of total latency.
        assert!(gp.contains("rect from 0.200000,0 to 0.950000,1"));
    }

    #[test]
    fn flamegraph_artifacts_land_under_the_workspace_root() {
        let paths = write_flamegraph(&summary(), "flamegraph-test").expect("writes");
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.starts_with(workspace_root().join("target")), "{p:?}");
            assert!(p.exists());
        }
        for p in paths {
            let _ = fs::remove_file(p);
        }
    }
}
