//! Universal Scalability Law fitting (Gunther, arXiv:1105.4301).
//!
//! The USL models throughput at concurrency `N` as
//!
//! ```text
//! X(N) = λN / (1 + σ(N−1) + κN(N−1))
//! ```
//!
//! with `λ` the ideal per-user rate, `σ` the contention (serialization)
//! fraction, and `κ` the coherency (crosstalk) penalty. With `κ > 0` the
//! curve has an interior maximum at `N* = √((1−σ)/κ)` — the *knee* the
//! paper's figures locate empirically. Fitting the measured sweep gives a
//! knee estimate that is robust to the sweep's grid spacing, which is what
//! the run-diff verdicts compare.
//!
//! The fit follows Gunther's linearization: with `y = λN/X − 1` the model
//! is linear in the two basis functions `(N−1)` and `N(N−1)`, so `σ` and
//! `κ` drop out of a 2×2 least-squares system — no iterative solver, no
//! dependencies.

/// A fitted USL curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UslFit {
    /// Ideal per-user throughput (slope at N → 0).
    pub lambda: f64,
    /// Contention fraction σ (queueing behind a serial resource).
    pub sigma: f64,
    /// Coherency penalty κ (pairwise crosstalk; κ > 0 ⇒ retrograde curve).
    pub kappa: f64,
}

impl UslFit {
    /// Fit the USL to a measured sweep of (concurrency, throughput) points.
    ///
    /// Returns `None` when fewer than two distinct positive-throughput
    /// points are given (the linearized system is underdetermined).
    ///
    /// Inverting the model gives `N/X = a + b(N−1) + cN(N−1)` with
    /// `a = 1/λ`, `b = σ/λ`, `c = κ/λ` — linear in all three unknowns, so
    /// the full fit (including λ, no N=1 measurement needed) is one 3×3
    /// least-squares solve.
    pub fn fit(points: &[(f64, f64)]) -> Option<UslFit> {
        let usable: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|&(n, x)| n >= 1.0 && x > 0.0)
            .collect();
        if usable.len() < 3 {
            return None;
        }
        // Normal equations A·p = r for y = a·1 + b·u + c·v, with
        // y = N/X, u = N−1, v = N(N−1).
        let mut a = [[0.0f64; 3]; 3];
        let mut r = [0.0f64; 3];
        for &(n, x) in &usable {
            let basis = [1.0, n - 1.0, n * (n - 1.0)];
            let y = n / x;
            for i in 0..3 {
                for j in 0..3 {
                    a[i][j] += basis[i] * basis[j];
                }
                r[i] += basis[i] * y;
            }
        }
        let det3 = |m: &[[f64; 3]; 3]| -> f64 {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        };
        let det = det3(&a);
        if det.abs() < 1e-12 {
            return None;
        }
        // Cramer's rule: replace column k with r.
        let solve = |k: usize| -> f64 {
            let mut m = a;
            for (row, &ri) in m.iter_mut().zip(&r) {
                row[k] = ri;
            }
            det3(&m) / det
        };
        let (pa, pb, pc) = (solve(0), solve(1), solve(2));
        if !pa.is_finite() || pa <= 0.0 {
            return None;
        }
        Some(UslFit {
            lambda: 1.0 / pa,
            sigma: pb / pa,
            kappa: pc / pa,
        })
    }

    /// Predicted throughput at concurrency `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.lambda * n / (1.0 + self.sigma * (n - 1.0) + self.kappa * n * (n - 1.0))
    }

    /// The knee `N* = √((1−σ)/κ)` — the concurrency of peak throughput.
    /// `None` when κ ≤ 0 (the fitted curve saturates without turning
    /// retrograde, so there is no interior maximum).
    pub fn knee(&self) -> Option<f64> {
        if self.kappa > 0.0 && self.sigma < 1.0 {
            Some(((1.0 - self.sigma) / self.kappa).sqrt())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(lambda: f64, sigma: f64, kappa: f64, ns: &[f64]) -> Vec<(f64, f64)> {
        let model = UslFit {
            lambda,
            sigma,
            kappa,
        };
        ns.iter().map(|&n| (n, model.predict(n))).collect()
    }

    #[test]
    fn fit_recovers_synthetic_parameters() {
        let ns = [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0];
        let pts = synth(2.0, 0.05, 2e-5, &ns);
        let fit = UslFit::fit(&pts).expect("fits");
        assert!((fit.sigma - 0.05).abs() < 1e-6, "sigma = {}", fit.sigma);
        assert!((fit.kappa - 2e-5).abs() < 1e-9, "kappa = {}", fit.kappa);
        let knee = fit.knee().expect("retrograde curve has a knee");
        let expected = ((1.0 - 0.05_f64) / 2e-5).sqrt();
        assert!((knee - expected).abs() / expected < 0.05, "knee = {knee}");
    }

    #[test]
    fn contention_only_curve_has_no_knee() {
        let ns = [10.0, 50.0, 100.0, 500.0];
        let pts = synth(1.5, 0.08, 0.0, &ns);
        let fit = UslFit::fit(&pts).expect("fits");
        assert!(fit.kappa.abs() < 1e-9);
        assert_eq!(fit.knee(), None);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(UslFit::fit(&[]).is_none());
        assert!(UslFit::fit(&[(100.0, 50.0)]).is_none());
        assert!(UslFit::fit(&[(100.0, 0.0), (200.0, 0.0)]).is_none());
        // Two copies of the same N: the 2×2 system is singular.
        assert!(UslFit::fit(&[(100.0, 50.0), (100.0, 50.0)]).is_none());
    }

    #[test]
    fn predict_is_ideal_at_n_equals_one() {
        let fit = UslFit {
            lambda: 3.0,
            sigma: 0.1,
            kappa: 1e-4,
        };
        assert!((fit.predict(1.0) - 3.0).abs() < 1e-12);
    }
}
