//! Store-backed run diffs with shape-check verdicts.
//!
//! A *sweep* is one variant of an executed experiment plan: a workload ramp
//! with one [`RunOutput`] per point. [`load_sweep`] reconstructs a sweep
//! from an [`ArtifactStore`] by manifest — every artifact is digest-verified
//! on load, and every failure (missing point, corrupt file, tampered
//! output) is a [`ReportError`], never a panic: diffing yesterday's store
//! against today's must degrade into an error message, not take down the
//! harness.
//!
//! [`RunDiff::compute`] compares a *before* sweep against an *after* sweep
//! and attaches three in-code verdicts ([`ShapeCheck`]s), mirroring how the
//! paper argues its figures:
//!
//! * **knee location** — both curves are USL-fitted ([`UslFit`]); the after
//!   knee must sit at least as far right as the before knee.
//! * **critical-tier identity** — the bottleneck at each sweep's peak; the
//!   after run must drive its critical tier at least as hot (a good
//!   allocation engages hardware instead of idling behind a soft limit).
//! * **curve direction** — the after curve must not turn retrograde (the
//!   over-allocation collapse of §III-B) and must peak at least as high.

use ntier_lab::{ArtifactStore, ExperimentPlan};
use tiers::{RunOutput, Tier};

use crate::usl::UslFit;
use crate::ReportError;

/// One point of a loaded sweep: the observables the verdicts reason about.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Concurrent users at this point.
    pub users: u32,
    /// Total throughput over the measurement window (req/s).
    pub throughput: f64,
    /// Goodput at the tightest SLA threshold (req/s).
    pub goodput: f64,
    /// The hottest hardware resource: (tier, replica, mean CPU util 0..1).
    pub critical: (Tier, u16, f64),
}

/// One variant's workload ramp, loaded back out of a store.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Variant label (plan column heading).
    pub label: String,
    /// Points in ramp order.
    pub points: Vec<SweepPoint>,
    /// USL fit over (users, throughput), when the ramp admits one.
    pub usl: Option<UslFit>,
}

impl SweepSummary {
    /// Summarize a sweep from outputs already in memory (ramp order).
    pub fn from_outputs(label: impl Into<String>, outputs: &[&RunOutput]) -> SweepSummary {
        let points: Vec<SweepPoint> = outputs
            .iter()
            .map(|o| {
                let (tier, replica, util) = o.max_cpu();
                SweepPoint {
                    users: o.users,
                    throughput: o.throughput,
                    goodput: o.goodput_at(1.0),
                    critical: (tier, replica, util),
                }
            })
            .collect();
        let curve: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.users as f64, p.throughput))
            .collect();
        SweepSummary {
            label: label.into(),
            points,
            usl: UslFit::fit(&curve),
        }
    }

    /// The peak point (highest throughput); `None` for an empty sweep.
    pub fn peak(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
    }

    /// The USL knee in users, when the fitted curve has one.
    pub fn knee_users(&self) -> Option<f64> {
        self.usl.and_then(|f| f.knee())
    }

    /// The measured throughput curve, in ramp order.
    pub fn throughputs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }
}

/// Load one variant of a plan back out of the store, by manifest.
///
/// Every point of the variant must already be persisted; a missing point is
/// [`ReportError::MissingPoint`], a corrupt or tampered artifact surfaces
/// the store's digest-verified load error.
pub fn load_sweep(
    store: &ArtifactStore,
    plan: &ExperimentPlan,
    variant: usize,
) -> Result<SweepSummary, ReportError> {
    let label = plan
        .variants
        .get(variant)
        .map(|v| v.label.clone())
        .ok_or_else(|| ReportError::Shape(format!("plan has no variant {variant}")))?;
    let mut outputs = Vec::new();
    for point in plan.expand().into_iter().filter(|p| p.variant == variant) {
        if !store.contains(point.digest) {
            return Err(ReportError::MissingPoint {
                digest: point.digest,
                label: point.label,
            });
        }
        outputs.push(store.load(point.digest)?);
    }
    if outputs.is_empty() {
        return Err(ReportError::Shape(format!(
            "variant '{label}' expands to no points"
        )));
    }
    let refs: Vec<&RunOutput> = outputs.iter().collect();
    Ok(SweepSummary::from_outputs(label, &refs))
}

/// Qualitative direction of a measured throughput curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveShape {
    /// Still climbing at the end of the ramp (knee not reached).
    Rising,
    /// Flattens near its maximum and holds (healthy saturation).
    Saturated,
    /// Peaks in the interior and falls off (the paper's over-allocation
    /// collapse, §III-B).
    Retrograde,
}

impl CurveShape {
    /// Human-readable name used in verdict details.
    pub fn name(&self) -> &'static str {
        match self {
            CurveShape::Rising => "rising",
            CurveShape::Saturated => "saturated",
            CurveShape::Retrograde => "retrograde",
        }
    }
}

/// Classify a throughput curve (ramp order). The tail is *retrograde* when
/// the final point drops more than 10% below the peak; *rising* when the
/// last step still gains more than 3%; *saturated* otherwise.
pub fn classify_curve(tp: &[f64]) -> CurveShape {
    if tp.len() < 2 {
        return CurveShape::Rising;
    }
    let peak = tp.iter().copied().fold(f64::MIN, f64::max);
    let last = *tp.last().expect("non-empty");
    let prev = tp[tp.len() - 2];
    if peak > 0.0 && last < peak * 0.90 {
        CurveShape::Retrograde
    } else if prev > 0.0 && last > prev * 1.03 {
        CurveShape::Rising
    } else {
        CurveShape::Saturated
    }
}

/// One named verdict of a shape check.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Verdict name (stable identifier, e.g. `knee-location`).
    pub name: &'static str,
    /// Whether the asserted shape holds.
    pub passed: bool,
    /// What was measured, for the rendered report.
    pub detail: String,
}

/// Assert that one sweep's measured curve has the expected direction —
/// the single-sweep verdict used by the pathology tests.
pub fn check_shape(sweep: &SweepSummary, expected: CurveShape) -> ShapeCheck {
    let got = classify_curve(&sweep.throughputs());
    ShapeCheck {
        name: "curve-shape",
        passed: got == expected,
        detail: format!(
            "{}: measured curve is {} (expected {})",
            sweep.label,
            got.name(),
            expected.name()
        ),
    }
}

/// A structured before/after comparison of two sweeps.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// The baseline sweep.
    pub before: SweepSummary,
    /// The candidate sweep.
    pub after: SweepSummary,
    /// Per-workload throughput deltas: (users, before, after), at the
    /// workload levels the two sweeps share.
    pub deltas: Vec<(u32, f64, f64)>,
}

impl RunDiff {
    /// Compare two sweeps point-by-point (matching on workload level).
    pub fn compute(before: SweepSummary, after: SweepSummary) -> RunDiff {
        let mut deltas = Vec::new();
        for b in &before.points {
            if let Some(a) = after.points.iter().find(|a| a.users == b.users) {
                deltas.push((b.users, b.throughput, a.throughput));
            }
        }
        RunDiff {
            before,
            after,
            deltas,
        }
    }

    /// Peak-throughput change, in percent of the before peak.
    pub fn peak_delta_pct(&self) -> Option<f64> {
        let b = self.before.peak()?.throughput;
        let a = self.after.peak()?.throughput;
        (b > 0.0).then(|| (a - b) / b * 100.0)
    }

    /// The three standard verdicts of a before→after comparison. They
    /// assert the after run scales *no worse* than the before run — a
    /// regression shows up as failed checks in the rendered report.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        vec![
            self.check_knee_location(),
            self.check_critical_tier(),
            self.check_curve_direction(),
        ]
    }

    /// knee-location: both curves admit a USL knee (or the after curve has
    /// not kneed at all within the ramp) and the after knee sits at least
    /// as far right as the before knee.
    pub fn check_knee_location(&self) -> ShapeCheck {
        let name = "knee-location";
        match (self.before.knee_users(), self.after.knee_users()) {
            (Some(kb), Some(ka)) => ShapeCheck {
                name,
                passed: ka >= kb,
                detail: format!(
                    "USL knee {} → {} users (λ {:.2} → {:.2})",
                    fmt_knee(kb),
                    fmt_knee(ka),
                    self.before.usl.map(|f| f.lambda).unwrap_or(0.0),
                    self.after.usl.map(|f| f.lambda).unwrap_or(0.0),
                ),
            },
            (Some(kb), None) => ShapeCheck {
                name,
                passed: true,
                detail: format!(
                    "before knees at {} users; after shows no knee within the ramp",
                    fmt_knee(kb)
                ),
            },
            (None, ka) => ShapeCheck {
                name,
                passed: ka.is_none(),
                detail: match ka {
                    None => "neither curve knees within the ramp".into(),
                    Some(ka) => format!(
                        "after knees at {} users while before did not — regression",
                        fmt_knee(ka)
                    ),
                },
            },
        }
    }

    /// critical-tier: name the bottleneck at each sweep's peak; the after
    /// run must drive its critical tier at least as hot as the before run
    /// drove its own (within a 2-point tolerance).
    pub fn check_critical_tier(&self) -> ShapeCheck {
        let name = "critical-tier";
        match (self.before.peak(), self.after.peak()) {
            (Some(b), Some(a)) => {
                let (bt, br, bu) = b.critical;
                let (at, ar, au) = a.critical;
                ShapeCheck {
                    name,
                    passed: au >= bu - 0.02,
                    detail: format!(
                        "critical tier at peak: {bt}#{br} at {:.0}% → {at}#{ar} at {:.0}%",
                        bu * 100.0,
                        au * 100.0
                    ),
                }
            }
            _ => ShapeCheck {
                name,
                passed: false,
                detail: "one of the sweeps is empty".into(),
            },
        }
    }

    /// curve-direction: the after curve must not turn retrograde and its
    /// peak throughput must be at least the before peak.
    pub fn check_curve_direction(&self) -> ShapeCheck {
        let name = "curve-direction";
        let shape = classify_curve(&self.after.throughputs());
        let (bp, ap) = (
            self.before.peak().map_or(0.0, |p| p.throughput),
            self.after.peak().map_or(0.0, |p| p.throughput),
        );
        ShapeCheck {
            name,
            passed: shape != CurveShape::Retrograde && ap >= bp,
            detail: format!(
                "after curve is {} with peak {:.1} req/s (before peak {:.1})",
                shape.name(),
                ap,
                bp
            ),
        }
    }
}

fn fmt_knee(k: f64) -> String {
    format!("{:.0}", k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(label: &str, pts: &[(u32, f64)]) -> SweepSummary {
        let points: Vec<SweepPoint> = pts
            .iter()
            .map(|&(users, tp)| SweepPoint {
                users,
                throughput: tp,
                goodput: tp,
                critical: (Tier::Db, 0, 0.9),
            })
            .collect();
        let curve: Vec<(f64, f64)> = pts.iter().map(|&(u, t)| (u as f64, t)).collect();
        SweepSummary {
            label: label.into(),
            points,
            usl: UslFit::fit(&curve),
        }
    }

    #[test]
    fn classify_names_the_three_directions() {
        assert_eq!(classify_curve(&[10.0, 20.0, 30.0]), CurveShape::Rising);
        assert_eq!(classify_curve(&[10.0, 20.0, 20.2]), CurveShape::Saturated);
        assert_eq!(classify_curve(&[10.0, 25.0, 15.0]), CurveShape::Retrograde);
        assert_eq!(classify_curve(&[5.0]), CurveShape::Rising);
    }

    #[test]
    fn diff_matches_points_by_workload() {
        let before = sweep("b", &[(100, 50.0), (200, 80.0), (400, 70.0)]);
        let after = sweep("a", &[(100, 50.0), (200, 95.0), (400, 110.0)]);
        let diff = RunDiff::compute(before, after);
        assert_eq!(diff.deltas.len(), 3);
        assert_eq!(diff.deltas[1], (200, 80.0, 95.0));
        let pct = diff.peak_delta_pct().expect("peaks exist");
        assert!((pct - 37.5).abs() < 1e-9, "pct = {pct}");
    }

    #[test]
    fn improvement_passes_all_three_verdicts() {
        // Before: retrograde, knees early. After: higher, still saturating.
        let before = sweep("b", &[(100, 60.0), (200, 90.0), (400, 85.0), (800, 60.0)]);
        let after = sweep(
            "a",
            &[(100, 62.0), (200, 115.0), (400, 150.0), (800, 152.0)],
        );
        let diff = RunDiff::compute(before, after);
        let checks = diff.shape_checks();
        assert_eq!(checks.len(), 3);
        for c in &checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }

    #[test]
    fn regression_fails_the_direction_verdict() {
        let before = sweep("b", &[(100, 60.0), (200, 100.0), (400, 105.0)]);
        let after = sweep("a", &[(100, 55.0), (200, 90.0), (400, 60.0)]);
        let diff = RunDiff::compute(before, after);
        let direction = diff.check_curve_direction();
        assert!(!direction.passed, "{}", direction.detail);
    }

    #[test]
    fn single_sweep_shape_verdict() {
        let collapse = sweep("over", &[(100, 60.0), (200, 90.0), (400, 50.0)]);
        assert!(check_shape(&collapse, CurveShape::Retrograde).passed);
        assert!(!check_shape(&collapse, CurveShape::Saturated).passed);
    }
}
