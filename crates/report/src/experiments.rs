//! Marked-section patching for hand-written docs with auto-generated
//! numbers.
//!
//! `EXPERIMENTS.md` mixes prose (stable, hand-written) with headline
//! numbers (regenerated from the artifact store). The generated part lives
//! between a marker pair so regeneration is idempotent and never touches
//! the prose: [`patch_marked_section`] replaces the block in place when the
//! markers exist, or appends a fresh block at the end when they don't.

/// Opening marker of the auto-generated block (HTML comment — invisible in
/// rendered markdown).
pub const BEGIN_MARK: &str = "<!-- BEGIN GENERATED: report-headlines -->";
/// Closing marker of the auto-generated block.
pub const END_MARK: &str = "<!-- END GENERATED: report-headlines -->";

/// Replace the text between `begin` and `end` (exclusive) with `body`,
/// keeping the markers; append a new marked block at the end when the
/// markers are absent. Returns the patched document.
pub fn patch_marked_section(text: &str, begin: &str, end: &str, body: &str) -> String {
    match (text.find(begin), text.find(end)) {
        (Some(b), Some(e)) if b < e => {
            let mut out = String::with_capacity(text.len() + body.len());
            out.push_str(&text[..b + begin.len()]);
            out.push('\n');
            out.push_str(body.trim_end());
            out.push('\n');
            out.push_str(&text[e..]);
            out
        }
        _ => {
            let mut out = text.trim_end().to_string();
            out.push_str("\n\n");
            out.push_str(begin);
            out.push('\n');
            out.push_str(body.trim_end());
            out.push('\n');
            out.push_str(end);
            out.push('\n');
            out
        }
    }
}

/// Render the standard headline block for a before/after diff: what the
/// demo and doc-regeneration flows splice between the markers.
pub fn headline_markdown(diff: &crate::diff::RunDiff) -> String {
    let mut out = String::new();
    out.push_str("_Auto-generated from the artifact store by `ntier-report` — do not edit._\n\n");
    if let Some(pct) = diff.peak_delta_pct() {
        out.push_str(&format!(
            "- Peak throughput `{}` → `{}`: **{pct:+.1}%**\n",
            diff.before.label, diff.after.label
        ));
    }
    for (label, sweep) in [("before", &diff.before), ("after", &diff.after)] {
        if let Some(p) = sweep.peak() {
            out.push_str(&format!(
                "- {label} `{}` peaks at {:.1} req/s ({} users); critical tier {}#{} at {:.0}% CPU\n",
                sweep.label,
                p.throughput,
                p.users,
                p.critical.0,
                p.critical.1,
                p.critical.2 * 100.0
            ));
        }
        if let Some(k) = sweep.knee_users() {
            out.push_str(&format!("- {label} USL knee: ~{k:.0} users\n"));
        }
    }
    for c in diff.shape_checks() {
        out.push_str(&format!(
            "- shape `{}`: {} — {}\n",
            c.name,
            if c.passed { "pass" } else { "FAIL" },
            c.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_replaces_between_markers_idempotently() {
        let doc = format!(
            "# Title\n\nprose before\n\n{BEGIN_MARK}\nold numbers\n{END_MARK}\n\nprose after\n"
        );
        let once = patch_marked_section(&doc, BEGIN_MARK, END_MARK, "new numbers");
        assert!(once.contains("new numbers"));
        assert!(!once.contains("old numbers"));
        assert!(once.contains("prose before"));
        assert!(once.contains("prose after"));
        let twice = patch_marked_section(&once, BEGIN_MARK, END_MARK, "new numbers");
        assert_eq!(once, twice);
    }

    #[test]
    fn patch_appends_block_when_markers_absent() {
        let doc = "# Title\n\njust prose\n";
        let patched = patch_marked_section(doc, BEGIN_MARK, END_MARK, "numbers");
        assert!(patched.contains(BEGIN_MARK));
        assert!(patched.contains(END_MARK));
        assert!(patched.contains("numbers"));
        assert!(patched.starts_with("# Title"));
        // And is then idempotent under replacement.
        let again = patch_marked_section(&patched, BEGIN_MARK, END_MARK, "numbers");
        assert_eq!(patched, again);
    }
}
