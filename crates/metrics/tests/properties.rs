//! Randomized tests of the SLA/metrics invariants the paper's methodology
//! rests on.

use metrics::{RtDistribution, ServerLog, SlaModel, SloSeries, UtilDensity};
use simcore::testkit::check;
use simcore::SimTime;

/// Goodput + badput = throughput at every threshold, for any response
/// times (§II-B: "the sum of goodput and badput amounts to the
/// traditional definition of throughput").
#[test]
fn goodput_badput_partition() {
    check(64, |g| {
        let rts = g.vec_f64(0.0, 20.0, 0, 500);
        let model = SlaModel::paper();
        let mut c = model.counters();
        for &rt in &rts {
            c.record(rt);
        }
        let w = 42.0;
        for i in 0..model.thresholds().len() {
            assert_eq!(c.good(i) + c.bad(i), c.total());
            assert!((c.goodput(i, w) + c.badput(i, w) - c.throughput(w)).abs() < 1e-9);
        }
        // Wider threshold ⇒ goodput can only grow.
        assert!(c.good(0) <= c.good(1) && c.good(1) <= c.good(2));
    });
}

/// The Fig. 3(c) distribution conserves counts and its fractions sum to 1.
#[test]
fn rt_distribution_conserves() {
    check(64, |g| {
        let rts = g.vec_f64(0.0, 10.0, 1, 400);
        let mut d = RtDistribution::new();
        for &rt in &rts {
            d.record(rt);
        }
        assert_eq!(d.total(), rts.len() as u64);
        assert_eq!(d.counts().iter().sum::<u64>(), rts.len() as u64);
        let sum: f64 = d.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    });
}

/// The SLA counters and the RT distribution agree on the 2 s boundary.
#[test]
fn sla_and_distribution_agree() {
    check(64, |g| {
        let rts = g.vec_f64(0.0, 10.0, 1, 300);
        let model = SlaModel::new(&[2.0]);
        let mut c = model.counters();
        let mut d = RtDistribution::new();
        for &rt in &rts {
            c.record(rt);
            d.record(rt);
        }
        // Everything beyond the last bin edge (2 s) is badput…
        // modulo the boundary: SLA counts rt == 2.0 as good, the histogram
        // bins it as overflow, so allow that off-by-boundary count.
        let over = d.counts()[7];
        let boundary = rts.iter().filter(|&&rt| rt == 2.0).count() as u64;
        assert_eq!(c.bad(0), over - boundary);
    });
}

/// Utilization density: pdf sums to 1 and the mean lies in [0,1].
#[test]
fn density_pdf_normalized() {
    check(64, |g| {
        let samples = g.vec_f64(-0.5, 1.5, 1, 300);
        let mut d = UtilDensity::new();
        for &s in &samples {
            d.add(s);
        }
        let sum: f64 = d.pdf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&d.mean()));
        assert!((0.0..=1.0).contains(&d.saturation_mass()));
    });
}

/// ServerLog: Little's law identity over arbitrary request logs.
#[test]
fn server_log_littles_identity() {
    check(64, |g| {
        let residencies = g.vec_u64(1, 10_000, 1, 300);
        let mut log = ServerLog::new("s");
        for (i, &ms) in residencies.iter().enumerate() {
            let start = SimTime::from_millis(i as u64 * 10);
            log.record(start, start + SimTime::from_millis(ms));
        }
        let window = 100.0;
        let jobs = log.mean_jobs(window);
        let manual = log.throughput(window) * log.mean_rtt();
        assert!((jobs - manual).abs() < 1e-9);
        assert_eq!(log.completions(), residencies.len() as u64);
        assert_eq!(log.out_of_order(), 0);
    });
}

/// SloSeries satisfaction samples are valid fractions and the overall
/// satisfaction equals good/total.
#[test]
fn slo_series_fractions() {
    check(64, |g| {
        let n = g.usize_in(1, 300);
        let events: Vec<(u64, f64)> = (0..n)
            .map(|_| (g.u64_in(0, 60_000), g.f64_in(0.0, 5.0)))
            .collect();
        let mut s = SloSeries::new(SimTime::ZERO, 1.0);
        let mut good = 0u64;
        for &(at_ms, rt) in &events {
            s.record(SimTime::from_millis(at_ms), rt);
            if rt <= 1.0 {
                good += 1;
            }
        }
        let overall = s.overall();
        assert!((overall - good as f64 / events.len() as f64).abs() < 1e-12);
        for f in s.satisfaction_samples(1) {
            assert!((0.0..=1.0).contains(&f));
        }
    });
}
