//! Automated phenomenon diagnosis over windowed run metrics.
//!
//! Classifies a run (or a load sweep) into the paper's soft-resource failure
//! modes:
//!
//! * [`Diagnosis::UnderAllocated`] — §III-A: a soft pool is saturated (full
//!   with a standing wait queue) while *every* hardware CPU stays idle. The
//!   bottleneck is the allocation, not the hardware.
//! * [`Diagnosis::OverAllocated`] — §III-B, Fig. 8: the GC share of some
//!   JVM tier climbs past a threshold near saturation and goodput collapses
//!   (large pools inflate memory pressure → stop-the-world pauses).
//! * [`Diagnosis::BufferingEffect`] — §III-C, Fig. 10: downstream CPU
//!   utilization *decreases* as offered load increases while the front
//!   tier's linger-close occupancy climbs — the small front pool is
//!   buffering the back-end's work away.
//! * [`Diagnosis::Healthy`] — none of the above (which includes ordinary
//!   *hardware* saturation: a busy CPU is what well-allocated soft
//!   resources are supposed to produce).
//!
//! The per-window series come from [`RunMetrics`]; saturation/idleness
//! judgments reuse the [`BottleneckDetector`] episode machinery.

use crate::bottleneck::{BottleneckDetector, SaturationClass};
use crate::timeseries::{ReplicaSeries, RunMetrics};
use ntier_trace::{Bucket, Exemplar, FlightSummary};
use std::fmt;
use std::fmt::Write as _;

/// The diagnosed condition of a run (or sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Diagnosis {
    /// A soft pool on `tier` is the bottleneck while all hardware is idle.
    UnderAllocated {
        /// Chain position of the starved tier (0 = front).
        tier: usize,
    },
    /// GC overhead past threshold with degraded goodput; carries the peak
    /// steady-state GC CPU share observed.
    OverAllocated {
        /// Mean stop-the-world fraction of the worst replica (steady half).
        gc_fraction: f64,
    },
    /// Downstream CPU falls as load rises while front-tier linger occupancy
    /// climbs (only detectable across a sweep).
    BufferingEffect,
    /// Bad work (timeouts / sheds / errors) keeps dominating the client's
    /// terminal events long after the triggering fault cleared — the system
    /// is stuck in a sustaining feedback loop (typically a retry storm)
    /// rather than recovering on its own.
    MetastableFailure {
        /// Fraction of terminal events after the fault cleared that were bad.
        badput_fraction: f64,
    },
    /// No soft-resource pathology detected.
    Healthy,
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnosis::UnderAllocated { tier } => {
                write!(f, "under-allocated (soft bottleneck at tier {tier})")
            }
            Diagnosis::OverAllocated { gc_fraction } => {
                write!(f, "over-allocated (GC share {:.0}%)", gc_fraction * 100.0)
            }
            Diagnosis::BufferingEffect => write!(f, "buffering effect (starved back-end)"),
            Diagnosis::MetastableFailure { badput_fraction } => {
                write!(
                    f,
                    "metastable failure ({:.0}% bad work after fault cleared)",
                    badput_fraction * 100.0
                )
            }
            Diagnosis::Healthy => write!(f, "healthy"),
        }
    }
}

/// Tunable thresholds for the diagnoser. The defaults are calibrated on the
/// paper's 1/2/1/2 and 1/4/1/4 configurations (see `tests/diagnosis.rs`).
#[derive(Debug, Clone)]
pub struct DiagnosisRules {
    /// A pool is "saturated" when its windows are saturated at least this
    /// fraction of the time (cf. `RunOutput::soft_saturated`).
    pub pool_saturated: f64,
    /// "Hardware idle" means every replica's mean CPU stays below this.
    pub cpu_idle_below: f64,
    /// GC share (steady half) above this flags over-allocation. Calibrated
    /// on the scaled 1/4/1/4 testbed: the 200-connection pathology holds a
    /// steady GC share ≈ 4%, its 10-connection control ≈ 1.5%, so 3% sits
    /// between them with margin on both sides.
    pub gc_threshold: f64,
    /// …provided goodput also collapsed: good/completed below this.
    pub goodput_floor: f64,
    /// Sweep: a downstream tier's mean CPU dropping by more than this
    /// relative fraction as load rises.
    pub cpu_drop: f64,
    /// Sweep: front linger occupancy must rise by this factor…
    pub linger_rise: f64,
    /// …and exceed this many workers in absolute terms.
    pub linger_floor: f64,
    /// Recovery: a post-fault window is "calm" when its bad fraction
    /// (timeouts + sheds + errors over all terminal events) stays below this.
    pub metastable_badput: f64,
    /// Recovery: this many consecutive calm windows declare recovery.
    pub recovery_streak: usize,
    /// Recovery: at least this many non-empty windows after the fault
    /// cleared are required before metastability can be judged at all.
    pub min_post_windows: usize,
    /// Episode machinery for saturation classification.
    pub detector: BottleneckDetector,
}

impl Default for DiagnosisRules {
    fn default() -> Self {
        DiagnosisRules {
            pool_saturated: 0.5,
            cpu_idle_below: 0.90,
            gc_threshold: 0.03,
            goodput_floor: 0.85,
            cpu_drop: 0.03,
            linger_rise: 1.15,
            linger_floor: 1.0,
            metastable_badput: 0.5,
            recovery_streak: 3,
            min_post_windows: 5,
            detector: BottleneckDetector::default(),
        }
    }
}

impl Diagnosis {
    /// Diagnose a single run with default rules.
    pub fn of_run(m: &RunMetrics) -> Diagnosis {
        Self::of_run_with(m, &DiagnosisRules::default())
    }

    /// Diagnose a single run.
    pub fn of_run_with(m: &RunMetrics, rules: &DiagnosisRules) -> Diagnosis {
        // 1. Under-allocation: a saturated soft pool + all hardware idle.
        if let Some(tier) = under_allocated_tier(m, rules) {
            return Diagnosis::UnderAllocated { tier };
        }
        // 2. Over-allocation: GC share past threshold with goodput collapse.
        if let Some(gc) = over_allocated_gc(m, rules) {
            return Diagnosis::OverAllocated { gc_fraction: gc };
        }
        Diagnosis::Healthy
    }

    /// Diagnose a load sweep (runs ordered by increasing offered load) with
    /// default rules. The buffering effect is only visible across loads;
    /// when absent, the highest-load run is diagnosed on its own.
    pub fn of_sweep(runs: &[&RunMetrics]) -> Diagnosis {
        Self::of_sweep_with(runs, &DiagnosisRules::default())
    }

    /// Diagnose a load sweep with explicit rules.
    pub fn of_sweep_with(runs: &[&RunMetrics], rules: &DiagnosisRules) -> Diagnosis {
        if runs.is_empty() {
            return Diagnosis::Healthy;
        }
        if runs.len() >= 2 {
            let lo = runs[0];
            let hi = runs[runs.len() - 1];
            if buffering_between(lo, hi, rules) {
                return Diagnosis::BufferingEffect;
            }
        }
        Self::of_run_with(runs[runs.len() - 1], rules)
    }

    /// Diagnose a run that experienced a fault which *cleared* at
    /// `fault_clear`, with default rules.
    pub fn of_recovery(m: &RunMetrics, fault_clear: simcore::SimTime) -> Diagnosis {
        Self::of_recovery_with(m, fault_clear, &DiagnosisRules::default())
    }

    /// Diagnose a run that experienced a transient fault. A healthy system
    /// returns to mostly-good work shortly after the fault clears; when the
    /// bad fraction instead stays above `rules.metastable_badput` through
    /// the rest of the observation horizon, the run is classified as a
    /// [`Diagnosis::MetastableFailure`]. Otherwise falls back to the single
    /// run diagnosis.
    pub fn of_recovery_with(
        m: &RunMetrics,
        fault_clear: simcore::SimTime,
        rules: &DiagnosisRules,
    ) -> Diagnosis {
        let post = post_fault_fractions(m, fault_clear);
        if post.len() >= rules.min_post_windows && recovery_window(&post, rules).is_none() {
            let bad: f64 = post.iter().map(|&(b, _)| b).sum();
            let total: f64 = post.iter().map(|&(_, t)| t).sum();
            if total > 0.0 && bad / total >= rules.metastable_badput {
                return Diagnosis::MetastableFailure {
                    badput_fraction: bad / total,
                };
            }
        }
        Self::of_run_with(m, rules)
    }

    /// Critical-path buckets that corroborate this verdict: a request whose
    /// dominant latency bucket is one of these is direct causal evidence for
    /// the diagnosis (§III's pathologies each have a distinct signature —
    /// pool wait for under-allocation, the surplus-thread overheads for the
    /// over-allocation collapse, retry backoff for metastable storms).
    pub fn supporting_buckets(&self) -> &'static [Bucket] {
        match self {
            Diagnosis::UnderAllocated { .. } | Diagnosis::BufferingEffect => &[
                Bucket::ConnPoolWait,
                Bucket::ThreadPoolWait,
                Bucket::AcceptWait,
            ],
            // Over-allocation hurts through *both* §III-B mechanisms: the
            // stop-the-world pauses of inflated heaps, and the run-queue
            // inflation of hundreds of surplus threads contending for CPU.
            Diagnosis::OverAllocated { .. } => &[Bucket::GcPause, Bucket::RunQueue],
            Diagnosis::MetastableFailure { .. } => &[Bucket::RetryBackoff],
            Diagnosis::Healthy => &[],
        }
    }

    /// Exemplars from the flight recorder whose dominant critical-path
    /// bucket matches this verdict, strongest first (by dominant fraction,
    /// then latency). Truncated windows already dropped partially-evicted
    /// traces, so every citation is backed by a complete span tree.
    pub fn evidence<'a>(&self, flight: &'a FlightSummary) -> Vec<Evidence<'a>> {
        let buckets = self.supporting_buckets();
        let mut out: Vec<Evidence<'a>> = flight
            .windows
            .iter()
            .flat_map(|w| w.exemplars.iter().map(move |e| (w.index, e)))
            .filter_map(|(window, exemplar)| {
                let (bucket, _) = exemplar.attribution.dominant();
                buckets.contains(&bucket).then(|| Evidence {
                    exemplar,
                    window,
                    bucket,
                    fraction: exemplar.attribution.fraction(bucket),
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.fraction
                .total_cmp(&a.fraction)
                .then(b.exemplar.latency.cmp(&a.exemplar.latency))
                .then(a.exemplar.trace.cmp(&b.exemplar.trace))
        });
        out
    }

    /// Human-readable verdict with up to `n` cited exemplars, e.g.
    ///
    /// ```text
    /// under-allocated (soft bottleneck at tier 1)
    ///   evidence: trace 812 (2.143 s, slow) 81% conn-pool-wait [window 7]
    /// ```
    ///
    /// Falls back to an explicit "no matching exemplar" line so a verdict
    /// without causal backing is visible as such.
    pub fn cite(&self, flight: &FlightSummary, n: usize) -> String {
        let mut out = format!("{self}");
        if self.supporting_buckets().is_empty() {
            return out;
        }
        let evidence = self.evidence(flight);
        if evidence.is_empty() {
            out.push_str("\n  evidence: none (no retained exemplar matches the verdict)");
            return out;
        }
        for e in evidence.iter().take(n.max(1)) {
            let _ = write!(
                out,
                "\n  evidence: trace {} ({:.3} s, {}) {:.0}% {} [window {}]",
                e.exemplar.trace,
                e.exemplar.latency.as_secs_f64(),
                e.exemplar.kind.label(),
                e.fraction * 100.0,
                e.bucket.label(),
                e.window,
            );
        }
        out
    }
}

/// One flight-recorder exemplar cited as causal evidence for a
/// [`Diagnosis`] verdict: the request's dominant critical-path bucket is in
/// the verdict's [`Diagnosis::supporting_buckets`] set.
#[derive(Debug, Clone)]
pub struct Evidence<'a> {
    /// The retained trace being cited.
    pub exemplar: &'a Exemplar,
    /// Index of the 100 ms window that retained it.
    pub window: usize,
    /// The request's dominant critical-path bucket.
    pub bucket: Bucket,
    /// Share of the request's latency spent in that bucket.
    pub fraction: f64,
}

/// Time from `fault_clear` until the client's bad-work fraction stays calm
/// (below `rules.metastable_badput`) for `rules.recovery_streak` consecutive
/// non-empty windows, in seconds. `None` when the run never recovers within
/// the observed horizon — the campaign oracle for *bounded recovery time*.
pub fn recovery_time_secs(
    m: &RunMetrics,
    fault_clear: simcore::SimTime,
    rules: &DiagnosisRules,
) -> Option<f64> {
    let post = post_fault_fractions(m, fault_clear);
    let w = recovery_window(&post, rules)?;
    Some(w as f64 * m.window.as_secs_f64())
}

/// Per-window `(bad, total)` terminal-event counts for the windows that start
/// at or after `fault_clear`. Empty windows (no terminal events at all) are
/// dropped: with nothing finishing they carry no signal either way.
fn post_fault_fractions(m: &RunMetrics, fault_clear: simcore::SimTime) -> Vec<(f64, f64)> {
    let width = m.window.as_secs_f64();
    if width <= 0.0 {
        return Vec::new();
    }
    let offset = fault_clear.saturating_sub(m.origin).as_secs_f64();
    let first = (offset / width).ceil() as usize;
    let c = &m.client;
    (first..m.n_windows.min(c.completed.len()))
        .map(|i| {
            let bad = c.timed_out[i] + c.shed[i] + c.failed[i];
            (bad, bad + c.completed[i])
        })
        .filter(|&(_, total)| total > 0.0)
        .collect()
}

/// Index (into the post-fault series) of the first window of a
/// `recovery_streak`-long run of calm windows, or `None`.
fn recovery_window(post: &[(f64, f64)], rules: &DiagnosisRules) -> Option<usize> {
    let streak = rules.recovery_streak.max(1);
    let mut run = 0usize;
    for (i, &(bad, total)) in post.iter().enumerate() {
        if bad / total < rules.metastable_badput {
            run += 1;
            if run >= streak {
                return Some(i + 1 - streak);
            }
        } else {
            run = 0;
        }
    }
    None
}

/// Mean of the steady (second) half of a window series — ramp transients and
/// warm-up GC live in the first half.
fn steady_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let half = &xs[xs.len() / 2..];
    half.iter().sum::<f64>() / half.len() as f64
}

/// A pool series saturated for more than `rules.pool_saturated` of the run,
/// classified as a *stable* episode (not a transient spike) by the detector.
fn pool_is_saturated(sat: &[f64], rules: &DiagnosisRules) -> bool {
    let mean = if sat.is_empty() {
        0.0
    } else {
        sat.iter().sum::<f64>() / sat.len() as f64
    };
    if mean <= rules.pool_saturated {
        return false;
    }
    // The detector's episode machinery distinguishes a standing queue from
    // scattered spikes; a saturated pool must be a stable saturated signal.
    rules.detector.classify(sat).class != SaturationClass::Unsaturated
}

fn replica_saturated_pool(r: &ReplicaSeries, rules: &DiagnosisRules) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for pool in [&r.threads, &r.db_conns].into_iter().flatten() {
        if pool_is_saturated(&pool.saturated, rules) {
            let m = pool.mean_saturated();
            worst = Some(worst.map_or(m, |w| w.max(m)));
        }
    }
    worst
}

fn under_allocated_tier(m: &RunMetrics, rules: &DiagnosisRules) -> Option<usize> {
    // All hardware idle?
    let hw_idle = m
        .replicas
        .iter()
        .all(|r| r.mean_cpu() < rules.cpu_idle_below);
    if !hw_idle {
        return None;
    }
    // Most-saturated soft pool wins.
    m.replicas
        .iter()
        .filter_map(|r| replica_saturated_pool(r, rules).map(|s| (r.tier, s)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(tier, _)| tier)
}

fn over_allocated_gc(m: &RunMetrics, rules: &DiagnosisRules) -> Option<f64> {
    let worst_gc = m
        .replicas
        .iter()
        .map(|r| steady_mean(&r.gc_fraction))
        .fold(0.0, f64::max);
    if worst_gc <= rules.gc_threshold {
        return None;
    }
    // Goodput collapse at the client: good/completed in the steady half.
    let total = steady_mean(&m.client.completed);
    let good = steady_mean(&m.client.good);
    let satisfaction = if total > 0.0 { good / total } else { 1.0 };
    (satisfaction < rules.goodput_floor).then_some(worst_gc)
}

fn front_linger_mean(m: &RunMetrics) -> f64 {
    m.replicas
        .iter()
        .filter(|r| r.tier == 0)
        .filter_map(|r| r.lingering.as_ref())
        .map(|l| steady_mean(l))
        .sum()
}

fn buffering_between(lo: &RunMetrics, hi: &RunMetrics, rules: &DiagnosisRules) -> bool {
    // Front linger occupancy must climb with offered load…
    let linger_lo = front_linger_mean(lo);
    let linger_hi = front_linger_mean(hi);
    if linger_hi < rules.linger_floor || linger_hi < linger_lo * rules.linger_rise {
        return false;
    }
    // …while some downstream tier's CPU *decreases*.
    let mut tiers = hi.tiers();
    tiers.retain(|&t| t != 0);
    tiers.into_iter().any(|t| {
        let cpu_lo = steady_mean(&lo.tier_cpu(t));
        let cpu_hi = steady_mean(&hi.tier_cpu(t));
        cpu_lo > 0.0 && cpu_hi < cpu_lo * (1.0 - rules.cpu_drop)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{ClientSeries, PoolSeries};
    use crate::QuantileSketch;
    use simcore::SimTime;

    fn client(n: usize, good_frac: f64) -> ClientSeries {
        ClientSeries {
            threshold_secs: 1.0,
            completed: vec![10.0; n],
            good: vec![10.0 * good_frac; n],
            timed_out: vec![0.0; n],
            shed: vec![0.0; n],
            failed: vec![0.0; n],
            retries: vec![0.0; n],
            hedged: vec![0.0; n],
            degraded: vec![0.0; n],
            breaker_transitions: vec![0.0; n],
            quantiles: vec![[0.1, 0.2, 0.3]; n],
            slo: None,
            overall: QuantileSketch::response_times(),
        }
    }

    fn replica(tier: usize, name: &str, n: usize, cpu: f64, gc: f64) -> ReplicaSeries {
        ReplicaSeries {
            tier,
            replica: 0,
            name: name.to_string(),
            cores: 1,
            cpu_util: vec![cpu; n],
            gc_fraction: vec![gc; n],
            run_queue: vec![1.0; n],
            threads: None,
            db_conns: None,
            lingering: None,
        }
    }

    fn run(replicas: Vec<ReplicaSeries>, good_frac: f64) -> RunMetrics {
        let n = 40;
        RunMetrics {
            window: SimTime::from_millis(100),
            origin: SimTime::ZERO,
            n_windows: n,
            replicas,
            client: client(n, good_frac),
        }
    }

    #[test]
    fn saturated_pool_with_idle_hardware_is_under_allocated() {
        let n = 40;
        let mut app = replica(1, "tomcat-0", n, 0.30, 0.0);
        app.threads = Some(PoolSeries {
            capacity: 3,
            in_use: vec![3.0; n],
            waiting: vec![12.0; n],
            saturated: vec![1.0; n],
        });
        let m = run(vec![replica(0, "apache-0", n, 0.2, 0.0), app], 0.5);
        assert_eq!(Diagnosis::of_run(&m), Diagnosis::UnderAllocated { tier: 1 });
    }

    #[test]
    fn saturated_pool_with_busy_cpu_is_not_under_allocated() {
        let n = 40;
        let mut app = replica(1, "tomcat-0", n, 0.98, 0.0);
        app.threads = Some(PoolSeries {
            capacity: 3,
            in_use: vec![3.0; n],
            waiting: vec![12.0; n],
            saturated: vec![1.0; n],
        });
        let m = run(vec![app], 0.95);
        assert_eq!(Diagnosis::of_run(&m), Diagnosis::Healthy);
    }

    #[test]
    fn high_gc_with_goodput_collapse_is_over_allocated() {
        let n = 40;
        let m = run(
            vec![
                replica(1, "tomcat-0", n, 0.7, 0.02),
                replica(2, "cjdbc-0", n, 0.99, 0.30),
            ],
            0.4,
        );
        match Diagnosis::of_run(&m) {
            Diagnosis::OverAllocated { gc_fraction } => {
                assert!((gc_fraction - 0.30).abs() < 1e-9)
            }
            d => panic!("expected OverAllocated, got {d:?}"),
        }
    }

    #[test]
    fn high_gc_with_good_slo_is_healthy() {
        let n = 40;
        let m = run(vec![replica(2, "cjdbc-0", n, 0.9, 0.30)], 0.99);
        assert_eq!(Diagnosis::of_run(&m), Diagnosis::Healthy);
    }

    #[test]
    fn sweep_detects_buffering_effect() {
        let n = 40;
        let mk = |cpu_down: f64, linger: f64| {
            let mut web = replica(0, "apache-0", n, 0.3, 0.0);
            web.lingering = Some(vec![linger; n]);
            run(vec![web, replica(2, "cjdbc-0", n, cpu_down, 0.0)], 0.9)
        };
        let lo = mk(0.6, 1.0);
        let hi = mk(0.4, 8.0);
        assert_eq!(Diagnosis::of_sweep(&[&lo, &hi]), Diagnosis::BufferingEffect);
        // Rising downstream CPU: no buffering; falls through to run diagnosis.
        let hi2 = mk(0.8, 8.0);
        assert_eq!(Diagnosis::of_sweep(&[&lo, &hi2]), Diagnosis::Healthy);
    }

    #[test]
    fn empty_sweep_is_healthy() {
        assert_eq!(Diagnosis::of_sweep(&[]), Diagnosis::Healthy);
    }

    /// A run whose client saw `bad` fraction of terminal events go bad in
    /// every window from `bad_from` on (and all-good before).
    fn faulted_run(n: usize, bad_from: usize, bad: f64) -> RunMetrics {
        let mut c = client(n, 1.0);
        for i in 0..n {
            let b = if i >= bad_from { bad } else { 0.0 };
            c.completed[i] = 10.0 * (1.0 - b);
            c.good[i] = c.completed[i];
            c.timed_out[i] = 10.0 * b;
        }
        RunMetrics {
            window: SimTime::from_millis(100),
            origin: SimTime::ZERO,
            n_windows: n,
            replicas: vec![replica(0, "apache-0", n, 0.3, 0.0)],
            client: c,
        }
    }

    #[test]
    fn persistent_badput_after_fault_clear_is_metastable() {
        // Fault cleared at window 10 but 90% of work keeps going bad.
        let m = faulted_run(40, 5, 0.9);
        let clear = SimTime::from_secs(1); // window 10 of 100 ms windows
        match Diagnosis::of_recovery(&m, clear) {
            Diagnosis::MetastableFailure { badput_fraction } => {
                assert!((badput_fraction - 0.9).abs() < 1e-9)
            }
            d => panic!("expected MetastableFailure, got {d:?}"),
        }
        let rules = DiagnosisRules::default();
        assert_eq!(recovery_time_secs(&m, clear, &rules), None);
    }

    #[test]
    fn badput_that_subsides_after_clear_is_not_metastable() {
        // Bad only during the fault [window 5, 10); clean afterwards.
        let mut m = faulted_run(40, 5, 0.9);
        for i in 10..40 {
            m.client.completed[i] = 10.0;
            m.client.good[i] = 10.0;
            m.client.timed_out[i] = 0.0;
        }
        let clear = SimTime::from_secs(1);
        assert_eq!(Diagnosis::of_recovery(&m, clear), Diagnosis::Healthy);
        // Calm from the very first post-clear window: instant recovery.
        let rules = DiagnosisRules::default();
        let t = recovery_time_secs(&m, clear, &rules).expect("recovers");
        assert_eq!(t, 0.0);
    }

    #[test]
    fn short_post_fault_horizon_is_not_judged() {
        // Only 3 windows after the clear point: below min_post_windows.
        let m = faulted_run(40, 5, 0.9);
        let clear = SimTime::from_secs_f64(3.7);
        assert_eq!(Diagnosis::of_recovery(&m, clear), Diagnosis::Healthy);
    }

    use ntier_trace::{Attribution, Bucket, Exemplar, ExemplarKind, FlightSummary, FlightWindow};

    /// Exemplar whose latency is `dominant_us` in `bucket` + `rest_us` of
    /// DB service.
    fn exemplar(trace: u64, bucket: Bucket, dominant_us: u64, rest_us: u64) -> Exemplar {
        let mut a = Attribution::default();
        a.micros[bucket.index()] = dominant_us;
        a.micros[Bucket::DbService.index()] += rest_us;
        a.latency_micros = dominant_us + rest_us;
        Exemplar {
            trace,
            latency: SimTime(a.latency_micros),
            outcome: "completed",
            ok: true,
            kind: ExemplarKind::Slow,
            spans: 5,
            attribution: a,
        }
    }

    fn summary(exemplars: Vec<Exemplar>) -> FlightSummary {
        FlightSummary {
            window: SimTime::from_millis(100),
            origin: SimTime::ZERO,
            classified: exemplars.len() as u64,
            windows: vec![FlightWindow {
                index: 0,
                completed: exemplars.len() as u32,
                failures: 0,
                profile: Attribution::default(),
                exemplars,
                truncated: false,
            }],
        }
    }

    #[test]
    fn evidence_cites_matching_dominant_buckets_strongest_first() {
        let d = Diagnosis::UnderAllocated { tier: 1 };
        let s = summary(vec![
            exemplar(1, Bucket::ConnPoolWait, 600_000, 400_000), // 60%
            exemplar(2, Bucket::GcPause, 900_000, 100_000),      // wrong bucket
            exemplar(3, Bucket::ThreadPoolWait, 900_000, 100_000), // 90%
        ]);
        let ev = d.evidence(&s);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].exemplar.trace, 3);
        assert_eq!(ev[0].bucket, Bucket::ThreadPoolWait);
        assert!((ev[0].fraction - 0.9).abs() < 1e-9);
        assert_eq!(ev[1].exemplar.trace, 1);
        // The GC exemplar instead backs an over-allocation verdict.
        let gc = Diagnosis::OverAllocated { gc_fraction: 0.1 };
        let ev = gc.evidence(&s);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].exemplar.trace, 2);
    }

    #[test]
    fn cite_renders_evidence_or_says_none() {
        let d = Diagnosis::UnderAllocated { tier: 1 };
        let s = summary(vec![exemplar(7, Bucket::ConnPoolWait, 750_000, 250_000)]);
        let text = d.cite(&s, 3);
        assert!(text.starts_with("under-allocated"), "{text}");
        assert!(
            text.contains("evidence: trace 7") && text.contains("75% conn-pool-wait"),
            "{text}"
        );
        // No matching exemplar: the gap is stated, not papered over.
        let text = Diagnosis::MetastableFailure {
            badput_fraction: 0.9,
        }
        .cite(&s, 3);
        assert!(text.contains("evidence: none"), "{text}");
        // Healthy verdicts need no evidence.
        assert_eq!(Diagnosis::Healthy.cite(&s, 3), "healthy");
    }
}
