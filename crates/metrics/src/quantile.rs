//! Streaming quantile sketch for per-window response-time percentiles.
//!
//! A deterministic log-bucket sketch: values are classified into geometric
//! buckets `[floor·g^i, floor·g^(i+1))`, so any reported quantile is within
//! a fixed *relative* error of the exact order statistic — `√g − 1` (≈1% for
//! the default growth of 1.02), the same geometry as the full-run response
//! histogram. Unlike randomized sketches (GK, KLL, t-digest) the result is
//! a pure function of the multiset of inserted values, which keeps metered
//! runs bit-reproducible and makes merging windows exact.

/// Default geometric bucket growth factor (≈1% relative quantile error).
pub const DEFAULT_GROWTH: f64 = 1.02;
/// Default smallest resolvable value (10 µs, below any modeled service time).
pub const DEFAULT_FLOOR: f64 = 1e-5;

/// A mergeable, deterministic streaming quantile sketch.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    floor: f64,
    growth: f64,
    log_growth: f64,
    /// Bucket counts, grown on demand up to the largest observed value.
    counts: Vec<u64>,
    /// Values below `floor` (reported as `floor`).
    underflow: u64,
    total: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Sketch with response-time defaults: 10 µs floor, 2% bucket growth.
    pub fn response_times() -> Self {
        Self::new(DEFAULT_FLOOR, DEFAULT_GROWTH)
    }

    /// Sketch resolving values down to `floor` with geometric bucket
    /// `growth` (> 1). Relative quantile error is bounded by `√growth − 1`.
    pub fn new(floor: f64, growth: f64) -> Self {
        assert!(floor > 0.0 && growth > 1.0, "invalid sketch geometry");
        QuantileSketch {
            floor,
            growth,
            log_growth: growth.ln(),
            counts: Vec::new(),
            underflow: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Insert one value (non-finite and negative values are clamped to 0).
    pub fn add(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.floor {
            self.underflow += 1;
            return;
        }
        let idx = ((v / self.floor).ln() / self.log_growth) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest inserted value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest inserted value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), or `None` when empty. Exact at the
    /// extremes (`min`/`max`), otherwise the geometric midpoint of the
    /// bucket holding the order statistic — within `√growth − 1` relative
    /// error of the exact value.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // Rank of the order statistic, 1-based ceil(q·n) like the drained-run
        // sorted-sample definition.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank <= self.underflow {
            return Some(self.min.min(self.floor));
        }
        let mut seen = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = self.floor * self.growth.powi(i as i32) * self.growth.sqrt();
                // Never report outside the observed range.
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another sketch into this one.
    ///
    /// # Panics
    /// If the two sketches have different geometry.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.floor == other.floor && self.growth == other.growth,
            "cannot merge sketches with different geometry"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `[p50, p95, p99]`, or `[0, 0, 0]` when empty — the fixed per-window
    /// triple exported by the metrics pipeline.
    pub fn p50_p95_p99(&self) -> [f64; 3] {
        [
            self.quantile(0.50).unwrap_or(0.0),
            self.quantile(0.95).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
        ]
    }

    /// Worst-case relative error of any reported (non-extreme) quantile.
    pub fn relative_error(&self) -> f64 {
        self.growth.sqrt() - 1.0
    }
}

/// Exact quantile of a *sorted* sample using the same 1-based
/// `ceil(q·n)` rank convention as the sketch — the reference the exactness
/// tests compare against.
pub fn exact_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    if q <= 0.0 {
        return Some(sorted[0]);
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::response_times();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p50_p95_p99(), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn quantiles_within_relative_error_of_exact() {
        let mut s = QuantileSketch::response_times();
        // A deterministic long-tailed sample (no RNG: quadratic ramp).
        let mut vals: Vec<f64> = (1..=5000).map(|i| 1e-4 * (i as f64).powf(1.7)).collect();
        for &v in &vals {
            s.add(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tol = s.relative_error() + 1e-12;
        for q in [0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999] {
            let exact = exact_quantile(&vals, q).unwrap();
            let got = s.quantile(q).unwrap();
            assert!(
                (got - exact).abs() / exact <= tol,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = QuantileSketch::response_times();
        for v in [0.250, 0.017, 1.9, 0.3] {
            s.add(v);
        }
        assert_eq!(s.quantile(0.0), Some(0.017));
        assert_eq!(s.quantile(1.0), Some(1.9));
        assert_eq!(s.min(), Some(0.017));
        assert_eq!(s.max(), Some(1.9));
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let mut a = QuantileSketch::response_times();
        let mut b = QuantileSketch::response_times();
        let mut all = QuantileSketch::response_times();
        for i in 0..1000 {
            let v = 0.001 * (i as f64 + 1.0);
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let vals: Vec<f64> = (1..=500).map(|i| (i as f64) * 0.003).collect();
        let mut fwd = QuantileSketch::response_times();
        let mut rev = QuantileSketch::response_times();
        for &v in &vals {
            fwd.add(v);
        }
        for &v in vals.iter().rev() {
            rev.add(v);
        }
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
    }

    #[test]
    fn underflow_values_report_as_min() {
        let mut s = QuantileSketch::response_times();
        s.add(1e-7);
        s.add(1e-7);
        s.add(1e-7);
        s.add(0.5);
        assert_eq!(s.quantile(0.5), Some(1e-7));
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = QuantileSketch::new(1e-5, 1.02);
        let b = QuantileSketch::new(1e-4, 1.02);
        a.merge(&b);
    }
}
