//! Per-server request logging — the observables Algorithm 1 consumes.
//!
//! The paper instruments every server so that "each individual server
//! response time for every request is logged" (§IV-B, assumption 3). From
//! these logs the algorithm derives per-tier throughput `TP`, residence time
//! `RTT`, and — via Little's law — the average number of jobs inside the
//! server (Table I).

use simcore::stats::Welford;
use simcore::SimTime;

/// Request log of a single server.
#[derive(Debug, Clone)]
pub struct ServerLog {
    name: String,
    rtt: Welford,
    completions: u64,
    out_of_order: u64,
}

impl ServerLog {
    /// New empty log for a named server.
    pub fn new(name: impl Into<String>) -> Self {
        ServerLog {
            name: name.into(),
            rtt: Welford::new(),
            completions: 0,
            out_of_order: 0,
        }
    }

    /// Server name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one request that resided in this server from `enter` to `leave`
    /// (residence includes any queueing for the server's soft resources —
    /// the job is "inside the server" the whole time, as in Fig. 9).
    ///
    /// A record with `leave < enter` is an instrumentation bug in the caller;
    /// it is rejected (not silently folded into the mean as 0.0) and counted
    /// in [`out_of_order`](Self::out_of_order) so it shows up in reports.
    pub fn record(&mut self, enter: SimTime, leave: SimTime) {
        if leave < enter {
            self.out_of_order += 1;
            return;
        }
        self.rtt.add(leave.saturating_sub(enter).as_secs_f64());
        self.completions += 1;
    }

    /// Records rejected because `leave < enter`.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Record a precomputed residence time in seconds.
    pub fn record_secs(&mut self, rtt_secs: f64) {
        self.rtt.add(rtt_secs.max(0.0));
        self.completions += 1;
    }

    /// Completions in the window.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Mean residence time (seconds).
    pub fn mean_rtt(&self) -> f64 {
        self.rtt.mean()
    }

    /// Throughput over a window of `window_secs`.
    pub fn throughput(&self, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.completions as f64 / window_secs
    }

    /// Average number of jobs inside the server by Little's law:
    /// `L = TP · RTT`.
    pub fn mean_jobs(&self, window_secs: f64) -> f64 {
        self.throughput(window_secs) * self.mean_rtt()
    }

    /// Reset for a new measurement window.
    pub fn reset(&mut self) {
        self.rtt = Welford::new();
        self.completions = 0;
        self.out_of_order = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_rtt_and_completions() {
        let mut log = ServerLog::new("tomcat-0");
        log.record(t(0), t(100));
        log.record(t(50), t(250));
        assert_eq!(log.completions(), 2);
        assert!((log.mean_rtt() - 0.150).abs() < 1e-9);
        assert_eq!(log.name(), "tomcat-0");
    }

    #[test]
    fn littles_law_consistency() {
        let mut log = ServerLog::new("s");
        // 100 requests over a 10 s window, each residing 0.2 s.
        for i in 0..100 {
            let start = t(i * 100);
            log.record(start, start + t(200));
        }
        let tp = log.throughput(10.0);
        assert!((tp - 10.0).abs() < 1e-9);
        let jobs = log.mean_jobs(10.0);
        assert!(
            (jobs - 2.0).abs() < 1e-9,
            "L = X*R = 10*0.2 = 2, got {jobs}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut log = ServerLog::new("s");
        log.record(t(0), t(10));
        log.reset();
        assert_eq!(log.completions(), 0);
        assert_eq!(log.mean_rtt(), 0.0);
    }

    #[test]
    fn out_of_order_records_are_rejected_and_counted() {
        let mut log = ServerLog::new("s");
        log.record(t(100), t(50)); // leave < enter: rejected
        log.record(t(0), t(100));
        assert_eq!(log.completions(), 1);
        assert_eq!(log.out_of_order(), 1);
        assert!(
            (log.mean_rtt() - 0.1).abs() < 1e-9,
            "bad record must not drag the mean"
        );
        log.reset();
        assert_eq!(log.out_of_order(), 0);
    }

    #[test]
    fn record_secs_clamps_negative() {
        let mut log = ServerLog::new("s");
        log.record_secs(-1.0);
        assert_eq!(log.mean_rtt(), 0.0);
        assert_eq!(log.completions(), 1);
    }
}
