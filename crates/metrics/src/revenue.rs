//! The SLA revenue model of §II-B.
//!
//! "The SLA document usually contains the service provider's revenue model,
//! determining the earnings of the provider for SLA compliance (when request
//! response times are within the limit) as well as the penalties in case of
//! failure. The provider's revenue is the sum of all earnings minus all
//! penalties."
//!
//! The paper works with the *simplified* model (a single threshold splitting
//! goodput from badput); this module implements the general stepped model of
//! their earlier work (\[1\], CloudXplor) so revenue-based comparisons between
//! allocations are possible: a request earns `earn(rt)` from a descending
//! step schedule and incurs `penalty` beyond the last step.

/// One revenue step: requests with `rt <= threshold_secs` (and above the
/// previous step's threshold) earn `earning` monetary units.
#[derive(Debug, Clone, Copy)]
pub struct RevenueStep {
    /// Response-time bound of this step (seconds).
    pub threshold_secs: f64,
    /// Earning per request landing in this step.
    pub earning: f64,
}

/// A stepped SLA revenue schedule.
#[derive(Debug, Clone)]
pub struct RevenueModel {
    steps: Vec<RevenueStep>,
    /// Penalty charged per request slower than the last step.
    penalty: f64,
    // accounting
    earned: f64,
    penalized: f64,
    requests: u64,
}

impl RevenueModel {
    /// Build from ascending-threshold steps with non-increasing earnings
    /// (faster responses can never be worth less) and a non-negative penalty.
    pub fn new(steps: &[RevenueStep], penalty: f64) -> Self {
        assert!(!steps.is_empty(), "need at least one revenue step");
        assert!(penalty >= 0.0, "penalty must be non-negative");
        assert!(
            steps
                .windows(2)
                .all(|w| w[0].threshold_secs < w[1].threshold_secs),
            "thresholds must ascend"
        );
        assert!(
            steps.windows(2).all(|w| w[0].earning >= w[1].earning),
            "earnings must not increase with response time"
        );
        RevenueModel {
            steps: steps.to_vec(),
            penalty,
            earned: 0.0,
            penalized: 0.0,
            requests: 0,
        }
    }

    /// The paper's simplified single-threshold model: earn 1 within the
    /// bound, pay `penalty` beyond it.
    pub fn simplified(threshold_secs: f64, penalty: f64) -> Self {
        RevenueModel::new(
            &[RevenueStep {
                threshold_secs,
                earning: 1.0,
            }],
            penalty,
        )
    }

    /// An e-commerce-style schedule: fast pages worth more, with the
    /// Aberdeen-style 5 s abandonment point as the penalty edge.
    pub fn ecommerce() -> Self {
        RevenueModel::new(
            &[
                RevenueStep {
                    threshold_secs: 0.5,
                    earning: 1.00,
                },
                RevenueStep {
                    threshold_secs: 1.0,
                    earning: 0.75,
                },
                RevenueStep {
                    threshold_secs: 2.0,
                    earning: 0.40,
                },
                RevenueStep {
                    threshold_secs: 5.0,
                    earning: 0.10,
                },
            ],
            0.50,
        )
    }

    /// Earning (or negative penalty) of a single response time.
    pub fn value_of(&self, rt_secs: f64) -> f64 {
        for s in &self.steps {
            if rt_secs <= s.threshold_secs {
                return s.earning;
            }
        }
        -self.penalty
    }

    /// Record one completed request.
    pub fn record(&mut self, rt_secs: f64) {
        let v = self.value_of(rt_secs);
        if v >= 0.0 {
            self.earned += v;
        } else {
            self.penalized += -v;
        }
        self.requests += 1;
    }

    /// Total earnings so far.
    pub fn earned(&self) -> f64 {
        self.earned
    }

    /// Total penalties so far.
    pub fn penalties(&self) -> f64 {
        self.penalized
    }

    /// Net revenue = earnings − penalties.
    pub fn revenue(&self) -> f64 {
        self.earned - self.penalized
    }

    /// Requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Net revenue per second over a window.
    pub fn revenue_rate(&self, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.revenue() / window_secs
    }

    /// Evaluate a whole response-time sample in one call.
    pub fn evaluate(mut self, rts: &[f64]) -> f64 {
        for &rt in rts {
            self.record(rt);
        }
        self.revenue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplified_model_matches_goodput_semantics() {
        let mut m = RevenueModel::simplified(1.0, 0.0);
        m.record(0.5); // good: +1
        m.record(1.0); // boundary: good (§II-B: equal-or-below satisfies)
        m.record(3.0); // bad: no penalty configured
        assert_eq!(m.revenue(), 2.0);
        assert_eq!(m.requests(), 3);
    }

    #[test]
    fn penalties_subtract() {
        let mut m = RevenueModel::simplified(1.0, 0.5);
        m.record(0.5);
        m.record(2.0);
        m.record(2.0);
        assert!((m.earned() - 1.0).abs() < 1e-12);
        assert!((m.penalties() - 1.0).abs() < 1e-12);
        assert!((m.revenue() + 0.0).abs() < 1e-12);
    }

    #[test]
    fn stepped_schedule_values() {
        let m = RevenueModel::ecommerce();
        assert_eq!(m.value_of(0.1), 1.00);
        assert_eq!(m.value_of(0.9), 0.75);
        assert_eq!(m.value_of(1.5), 0.40);
        assert_eq!(m.value_of(4.0), 0.10);
        assert_eq!(m.value_of(10.0), -0.50);
    }

    #[test]
    fn revenue_prefers_fast_distributions() {
        // Same throughput, different RT distributions: revenue must favor
        // the faster one — the paper's core argument that "increasing
        // throughput without other considerations leads to significant drops
        // in provider revenue".
        let fast: Vec<f64> = (0..100).map(|i| 0.2 + 0.003 * i as f64).collect();
        let slow: Vec<f64> = (0..100).map(|i| 2.0 + 0.05 * i as f64).collect();
        let r_fast = RevenueModel::ecommerce().evaluate(&fast);
        let r_slow = RevenueModel::ecommerce().evaluate(&slow);
        assert!(r_fast > r_slow * 2.0, "fast {r_fast} vs slow {r_slow}");
    }

    #[test]
    fn revenue_rate() {
        let mut m = RevenueModel::simplified(1.0, 0.0);
        for _ in 0..120 {
            m.record(0.1);
        }
        assert!((m.revenue_rate(60.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_steps_rejected() {
        let _ = RevenueModel::new(
            &[
                RevenueStep {
                    threshold_secs: 2.0,
                    earning: 1.0,
                },
                RevenueStep {
                    threshold_secs: 1.0,
                    earning: 0.5,
                },
            ],
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "not increase")]
    fn increasing_earnings_rejected() {
        let _ = RevenueModel::new(
            &[
                RevenueStep {
                    threshold_secs: 1.0,
                    earning: 0.5,
                },
                RevenueStep {
                    threshold_secs: 2.0,
                    earning: 1.0,
                },
            ],
            0.0,
        );
    }
}
