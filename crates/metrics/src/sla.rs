//! The simplified SLA model: goodput vs badput at response-time thresholds.

/// A set of response-time thresholds (seconds), e.g. `[0.5, 1.0, 2.0]`.
#[derive(Debug, Clone)]
pub struct SlaModel {
    thresholds: Vec<f64>,
}

impl SlaModel {
    /// Build from ascending positive thresholds.
    pub fn new(thresholds: &[f64]) -> Self {
        assert!(!thresholds.is_empty(), "need at least one threshold");
        assert!(
            thresholds.iter().all(|&t| t > 0.0) && thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be positive and ascending"
        );
        SlaModel {
            thresholds: thresholds.to_vec(),
        }
    }

    /// The paper's three thresholds: 0.5 s, 1 s, 2 s.
    pub fn paper() -> Self {
        SlaModel::new(&[0.5, 1.0, 2.0])
    }

    /// The thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Fresh counters for this model.
    pub fn counters(&self) -> SlaCounts {
        SlaCounts {
            thresholds: self.thresholds.clone(),
            good: vec![0; self.thresholds.len()],
            total: 0,
            errors: 0,
        }
    }
}

/// Goodput/badput counters for one run under an [`SlaModel`].
#[derive(Debug, Clone)]
pub struct SlaCounts {
    thresholds: Vec<f64>,
    good: Vec<u64>,
    total: u64,
    errors: u64,
}

impl SlaCounts {
    /// Record a completed request with response time `rt_secs`.
    pub fn record(&mut self, rt_secs: f64) {
        self.total += 1;
        for (i, &t) in self.thresholds.iter().enumerate() {
            if rt_secs <= t {
                self.good[i] += 1;
            }
        }
    }

    /// Record a request that terminated in an error (timed out, shed, or
    /// failed): it counts toward throughput and is badput at *every*
    /// threshold — an error page never satisfies the SLA — so the partition
    /// `goodput + badput == throughput` keeps holding.
    pub fn record_error(&mut self) {
        self.total += 1;
        self.errors += 1;
    }

    /// Requests that terminated in an error.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Fraction of requests that did not error (1.0 when empty). The
    /// classic availability metric: errors are unavailability regardless of
    /// response time.
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.total - self.errors) as f64 / self.total as f64
        }
    }

    /// Requests completed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests within the `i`-th threshold.
    pub fn good(&self, i: usize) -> u64 {
        self.good[i]
    }

    /// Requests beyond the `i`-th threshold.
    pub fn bad(&self, i: usize) -> u64 {
        self.total - self.good[i]
    }

    /// Goodput in requests/second over a window of `window_secs`.
    pub fn goodput(&self, i: usize, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.good[i] as f64 / window_secs
    }

    /// Badput in requests/second over a window of `window_secs`.
    pub fn badput(&self, i: usize, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.bad(i) as f64 / window_secs
    }

    /// Total throughput in requests/second over a window.
    pub fn throughput(&self, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.total as f64 / window_secs
    }

    /// Fraction of requests within the `i`-th threshold (1.0 when empty —
    /// an idle system violates no SLA).
    pub fn satisfaction(&self, i: usize) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.good[i] as f64 / self.total as f64
        }
    }

    /// The threshold values (seconds).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_badput_partition_throughput() {
        let model = SlaModel::paper();
        let mut c = model.counters();
        for rt in [0.1, 0.4, 0.7, 1.5, 3.0] {
            c.record(rt);
        }
        assert_eq!(c.total(), 5);
        // threshold 0.5: good = {0.1, 0.4}
        assert_eq!(c.good(0), 2);
        assert_eq!(c.bad(0), 3);
        // threshold 1.0: + {0.7}
        assert_eq!(c.good(1), 3);
        // threshold 2.0: + {1.5}
        assert_eq!(c.good(2), 4);
        // Partition identity at every threshold.
        for i in 0..3 {
            assert_eq!(c.good(i) + c.bad(i), c.total());
            let w = 10.0;
            assert!((c.goodput(i, w) + c.badput(i, w) - c.throughput(w)).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_value_counts_as_good() {
        // "Requests with response time equal or below the threshold satisfy
        // the SLA" (§II-B).
        let model = SlaModel::new(&[1.0]);
        let mut c = model.counters();
        c.record(1.0);
        assert_eq!(c.good(0), 1);
    }

    #[test]
    fn satisfaction_fraction() {
        let model = SlaModel::new(&[1.0]);
        let mut c = model.counters();
        assert_eq!(c.satisfaction(0), 1.0);
        c.record(0.5);
        c.record(2.0);
        assert!((c.satisfaction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_are_badput_at_every_threshold() {
        let model = SlaModel::paper();
        let mut c = model.counters();
        c.record(0.1);
        c.record_error();
        c.record_error();
        assert_eq!(c.total(), 3);
        assert_eq!(c.errors(), 2);
        assert!((c.availability() - 1.0 / 3.0).abs() < 1e-12);
        for i in 0..3 {
            assert_eq!(c.good(i), 1);
            assert_eq!(c.bad(i), 2);
            let w = 10.0;
            assert!((c.goodput(i, w) + c.badput(i, w) - c.throughput(w)).abs() < 1e-12);
        }
    }

    #[test]
    fn availability_is_one_when_idle() {
        let c = SlaModel::paper().counters();
        assert_eq!(c.availability(), 1.0);
        assert_eq!(c.errors(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_thresholds_rejected() {
        let _ = SlaModel::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_thresholds_rejected() {
        let _ = SlaModel::new(&[]);
    }
}
