//! The paper's response-time distribution bins (Fig. 3(c)).

use simcore::stats::Histogram;

/// Fixed-bin response-time distribution:
/// `[0,.2] [.2,.4] [.4,.6] [.6,.8] [.8,1] [1,1.5] [1.5,2] >2` (seconds).
#[derive(Debug, Clone)]
pub struct RtDistribution {
    hist: Histogram,
}

/// Human-readable labels for the eight paper bins.
pub const BIN_LABELS: [&str; 8] = [
    "[0,.2]", "[.2,.4]", "[.4,.6]", "[.6,.8]", "[.8,1]", "[1,1.5]", "[1.5,2]", ">2",
];

impl RtDistribution {
    /// New empty distribution with the paper's bins.
    pub fn new() -> Self {
        RtDistribution {
            hist: Histogram::with_edges(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0]),
        }
    }

    /// Record a response time in seconds.
    pub fn record(&mut self, rt_secs: f64) {
        self.hist.add(rt_secs.max(0.0));
    }

    /// Counts for the eight bins (the last one is the `>2` overflow).
    pub fn counts(&self) -> [u64; 8] {
        let c = self.hist.counts();
        [
            c[0],
            c[1],
            c[2],
            c[3],
            c[4],
            c[5],
            c[6],
            self.hist.overflow(),
        ]
    }

    /// Fractions of all recorded requests per bin.
    pub fn fractions(&self) -> [f64; 8] {
        let total = self.total().max(1) as f64;
        let c = self.counts();
        std::array::from_fn(|i| c[i] as f64 / total)
    }

    /// Total recorded requests.
    pub fn total(&self) -> u64 {
        self.hist.total()
    }
}

impl Default for RtDistribution {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_match_paper() {
        let mut d = RtDistribution::new();
        for rt in [0.1, 0.3, 0.5, 0.7, 0.9, 1.2, 1.7, 5.0] {
            d.record(rt);
        }
        assert_eq!(d.counts(), [1, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut d = RtDistribution::new();
        for i in 0..100 {
            d.record(i as f64 * 0.03);
        }
        let sum: f64 = d.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_clamped_to_first_bin() {
        let mut d = RtDistribution::new();
        d.record(-0.5);
        assert_eq!(d.counts()[0], 1);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = RtDistribution::new();
        assert_eq!(d.total(), 0);
        assert!(d.fractions().iter().all(|&f| f == 0.0));
    }
}
