//! Exporters for windowed run metrics: CSV/JSONL dumps, gnuplot-ready
//! Fig. 4/8/10-style series files, and a plain-text per-tier dashboard.
//!
//! All exporters are pure `RunMetrics -> String` functions (hand-rolled,
//! dependency-free) plus a small [`MetricsSink`] that parses the CLI-side
//! `PATH[:WINDOW_MS]` spec and owns the file writing.

use crate::diagnosis::Diagnosis;
use crate::timeseries::{MetricsConfig, RunMetrics, DEFAULT_WINDOW};
use simcore::SimTime;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// CSV header shared by every per-window dump.
pub const CSV_HEADER: &str = "window,start_secs,scope,cpu_util,gc_fraction,run_queue,\
threads_in_use,threads_waiting,threads_saturated,conns_in_use,conns_waiting,conns_saturated,\
lingering,completed,good,bad,timed_out,shed,failed,retries,hedged,degraded,\
breaker_transitions,p50,p95,p99";

fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.6}")
    }
}

fn opt(series: Option<&Vec<f64>>, i: usize) -> String {
    series
        .and_then(|s| s.get(i))
        .map(|&v| num(v))
        .unwrap_or_default()
}

/// Flat per-window CSV: one row per `(window, replica)` plus one `client`
/// row per window; inapplicable columns are empty.
pub fn to_csv(m: &RunMetrics) -> String {
    let mut out = String::new();
    out.push_str(CSV_HEADER);
    out.push('\n');
    let bad = m.client.bad();
    for (i, &bad_i) in bad.iter().enumerate().take(m.n_windows) {
        let t = num(m.window_start_secs(i));
        for r in &m.replicas {
            let _ = writeln!(
                out,
                "{i},{t},{name},{cpu},{gc},{rq},{tiu},{tw},{ts},{ciu},{cw},{cs},{lin},,,,,,,,,,,,,",
                name = r.name,
                cpu = opt(Some(&r.cpu_util), i),
                gc = opt(Some(&r.gc_fraction), i),
                rq = opt(Some(&r.run_queue), i),
                tiu = opt(r.threads.as_ref().map(|p| &p.in_use), i),
                tw = opt(r.threads.as_ref().map(|p| &p.waiting), i),
                ts = opt(r.threads.as_ref().map(|p| &p.saturated), i),
                ciu = opt(r.db_conns.as_ref().map(|p| &p.in_use), i),
                cw = opt(r.db_conns.as_ref().map(|p| &p.waiting), i),
                cs = opt(r.db_conns.as_ref().map(|p| &p.saturated), i),
                lin = opt(r.lingering.as_ref(), i),
            );
        }
        let q = m.client.quantiles.get(i).copied().unwrap_or([0.0; 3]);
        let _ = writeln!(
            out,
            "{i},{t},client,,,,,,,,,,,{c},{g},{b},{to},{sh},{fa},{re},{he},{de},{bt},{p50},{p95},{p99}",
            c = num(m.client.completed[i]),
            g = num(m.client.good[i]),
            b = num(bad_i),
            to = num(m.client.timed_out[i]),
            sh = num(m.client.shed[i]),
            fa = num(m.client.failed[i]),
            re = num(m.client.retries[i]),
            he = num(m.client.hedged[i]),
            de = num(m.client.degraded[i]),
            bt = num(m.client.breaker_transitions[i]),
            p50 = num(q[0]),
            p95 = num(q[1]),
            p99 = num(q[2]),
        );
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One JSON object per window, replicas nested, client counters inline.
pub fn to_jsonl(m: &RunMetrics) -> String {
    let mut out = String::new();
    let bad = m.client.bad();
    for (i, &bad_i) in bad.iter().enumerate().take(m.n_windows) {
        let q = m.client.quantiles.get(i).copied().unwrap_or([0.0; 3]);
        let _ = write!(
            out,
            "{{\"window\":{i},\"start_secs\":{t},\"completed\":{c},\"good\":{g},\"bad\":{b},\
             \"timed_out\":{to},\"shed\":{sh},\"failed\":{fa},\"retries\":{re},\
             \"hedged\":{he},\"degraded\":{de},\"breaker_transitions\":{bt},\
             \"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"replicas\":[",
            t = num(m.window_start_secs(i)),
            c = num(m.client.completed[i]),
            g = num(m.client.good[i]),
            b = num(bad_i),
            to = num(m.client.timed_out[i]),
            sh = num(m.client.shed[i]),
            fa = num(m.client.failed[i]),
            re = num(m.client.retries[i]),
            he = num(m.client.hedged[i]),
            de = num(m.client.degraded[i]),
            bt = num(m.client.breaker_transitions[i]),
            p50 = num(q[0]),
            p95 = num(q[1]),
            p99 = num(q[2]),
        );
        for (k, r) in m.replicas.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{name},\"tier\":{tier},\"cpu\":{cpu},\"gc\":{gc},\"run_queue\":{rq}",
                name = json_str(&r.name),
                tier = r.tier,
                cpu = opt(Some(&r.cpu_util), i),
                gc = opt(Some(&r.gc_fraction), i),
                rq = opt(Some(&r.run_queue), i),
            );
            if let Some(p) = &r.threads {
                let _ = write!(
                    out,
                    ",\"threads\":{{\"in_use\":{},\"waiting\":{},\"saturated\":{}}}",
                    opt(Some(&p.in_use), i),
                    opt(Some(&p.waiting), i),
                    opt(Some(&p.saturated), i),
                );
            }
            if let Some(p) = &r.db_conns {
                let _ = write!(
                    out,
                    ",\"db_conns\":{{\"in_use\":{},\"waiting\":{},\"saturated\":{}}}",
                    opt(Some(&p.in_use), i),
                    opt(Some(&p.waiting), i),
                    opt(Some(&p.saturated), i),
                );
            }
            if let Some(l) = &r.lingering {
                let _ = write!(out, ",\"lingering\":{}", opt(Some(l), i));
            }
            out.push('}');
        }
        out.push_str("]}\n");
    }
    out
}

/// Gnuplot-ready `.dat` series in the shapes of the paper's figures:
///
/// * `util` — Fig. 4-style: time vs per-replica CPU utilization;
/// * `gc_goodput` — Fig. 8-style: time vs per-replica GC share and
///   client goodput/badput;
/// * `buffering` — Fig. 10-style: time vs front linger occupancy and
///   downstream per-tier CPU.
///
/// Returns `(file_stem, contents)` pairs; every file is
/// whitespace-separated with a `#` comment header naming the columns.
pub fn gnuplot_series(m: &RunMetrics) -> Vec<(String, String)> {
    let mut files = Vec::new();

    // Fig. 4-style per-replica utilization.
    let mut util = String::from("# t_secs");
    for r in &m.replicas {
        let _ = write!(util, " {}", r.name);
    }
    util.push('\n');
    for i in 0..m.n_windows {
        let _ = write!(util, "{}", num(m.window_start_secs(i)));
        for r in &m.replicas {
            let _ = write!(util, " {}", opt(Some(&r.cpu_util), i));
        }
        util.push('\n');
    }
    files.push(("util".to_string(), util));

    // Fig. 8-style GC share + goodput/badput.
    let mut gc = String::from("# t_secs goodput badput");
    for r in &m.replicas {
        let _ = write!(gc, " gc_{}", r.name);
    }
    gc.push('\n');
    let bad = m.client.bad();
    let per_sec = 1.0 / m.window.as_secs_f64();
    for (i, &bad_i) in bad.iter().enumerate().take(m.n_windows) {
        let _ = write!(
            gc,
            "{} {} {}",
            num(m.window_start_secs(i)),
            num(m.client.good[i] * per_sec),
            num(bad_i * per_sec),
        );
        for r in &m.replicas {
            let _ = write!(gc, " {}", opt(Some(&r.gc_fraction), i));
        }
        gc.push('\n');
    }
    files.push(("gc_goodput".to_string(), gc));

    // Fig. 10-style buffering signal.
    let mut buf = String::from("# t_secs front_lingering");
    let tiers: Vec<usize> = m.tiers().into_iter().filter(|&t| t != 0).collect();
    for &t in &tiers {
        let _ = write!(buf, " tier{t}_cpu");
    }
    buf.push('\n');
    let tier_cpu: Vec<Vec<f64>> = tiers.iter().map(|&t| m.tier_cpu(t)).collect();
    for i in 0..m.n_windows {
        let linger: f64 = m
            .replicas
            .iter()
            .filter(|r| r.tier == 0)
            .filter_map(|r| r.lingering.as_ref().and_then(|l| l.get(i)))
            .sum();
        let _ = write!(buf, "{} {}", num(m.window_start_secs(i)), num(linger));
        for cpu in &tier_cpu {
            let _ = write!(buf, " {}", num(cpu.get(i).copied().unwrap_or(0.0)));
        }
        buf.push('\n');
    }
    files.push(("buffering".to_string(), buf));

    files
}

fn fmt_pct(v: f64) -> String {
    format!("{:5.1}%", v * 100.0)
}

/// Plain-text per-tier dashboard summary, ending with the diagnosis line.
pub fn dashboard(m: &RunMetrics) -> String {
    let mut out = String::new();
    let span = m.n_windows as f64 * m.window.as_secs_f64();
    let _ = writeln!(
        out,
        "metrics: {} windows x {} ms ({:.0} s measured)",
        m.n_windows,
        m.window.as_secs_f64() * 1e3,
        span,
    );
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>7} {:>9} {:>10} {:>10} {:>10}",
        "replica", "cpu", "gc", "runq", "threads", "db-conns", "lingering"
    );
    for r in &m.replicas {
        let pool = |p: &Option<crate::timeseries::PoolSeries>| -> String {
            p.as_ref()
                .map(|p| {
                    let occ = mean(&p.in_use) / p.capacity as f64;
                    format!("{:.0}/{}", mean(&p.in_use), p.capacity).to_string()
                        + if occ >= 0.95 { "*" } else { "" }
                })
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>7} {:>9.2} {:>10} {:>10} {:>10}",
            r.name,
            fmt_pct(r.mean_cpu()),
            fmt_pct(r.mean_gc()),
            mean(&r.run_queue),
            pool(&r.threads),
            pool(&r.db_conns),
            r.lingering
                .as_ref()
                .map(|l| format!("{:.1}", mean(l)))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    let total: f64 = m.client.completed.iter().sum();
    let good: f64 = m.client.good.iter().sum();
    let q = m.client.overall.p50_p95_p99();
    let _ = writeln!(
        out,
        "client: {:.1} req/s, goodput {:.1} req/s ({} within {} s), p50/p95/p99 {:.3}/{:.3}/{:.3} s",
        total / span,
        good / span,
        fmt_pct(if total > 0.0 { good / total } else { 1.0 }).trim(),
        m.client.threshold_secs,
        q[0],
        q[1],
        q[2],
    );
    let _ = writeln!(out, "diagnosis: {}", Diagnosis::of_run(m));
    out
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Parsed `--metrics PATH[:WINDOW_MS]` CLI spec: where to write the CSV and
/// how fine to sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSink {
    /// Output path for the CSV dump.
    pub path: PathBuf,
    /// Window width (default 100 ms).
    pub window: SimTime,
}

impl MetricsSink {
    /// Parse `PATH` or `PATH:WINDOW_MS` (a trailing all-digit suffix after
    /// the last `:` is the window in milliseconds).
    pub fn parse(spec: &str) -> Result<MetricsSink, String> {
        if spec.is_empty() {
            return Err("empty --metrics spec".to_string());
        }
        if let Some((path, ms)) = spec.rsplit_once(':') {
            if let Ok(ms) = ms.parse::<u64>() {
                if ms == 0 {
                    return Err("metrics window must be > 0 ms".to_string());
                }
                if path.is_empty() {
                    return Err("empty path in --metrics spec".to_string());
                }
                return Ok(MetricsSink {
                    path: PathBuf::from(path),
                    window: SimTime::from_millis(ms),
                });
            }
        }
        Ok(MetricsSink {
            path: PathBuf::from(spec),
            window: DEFAULT_WINDOW,
        })
    }

    /// The matching run configuration.
    pub fn config(&self) -> MetricsConfig {
        MetricsConfig::windowed(self.window)
    }

    /// Write the CSV dump to `self.path` (parent directories are created).
    pub fn write_csv(&self, m: &RunMetrics) -> io::Result<()> {
        write_file(&self.path, &to_csv(m))
    }

    /// Like [`write_csv`](Self::write_csv) but with `-suffix` appended to
    /// the file stem — for multi-run sweeps sharing one `--metrics` flag.
    /// Returns the path written.
    pub fn write_csv_suffixed(&self, suffix: &str, m: &RunMetrics) -> io::Result<PathBuf> {
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("metrics");
        let ext = self
            .path
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or("csv");
        let path = self.path.with_file_name(format!("{stem}-{suffix}.{ext}"));
        write_file(&path, &to_csv(m))?;
        Ok(path)
    }
}

fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{ClientSeries, PoolSeries, ReplicaSeries};
    use crate::QuantileSketch;

    fn sample_metrics() -> RunMetrics {
        let n = 2;
        let mut overall = QuantileSketch::response_times();
        overall.add(0.2);
        RunMetrics {
            window: SimTime::from_millis(100),
            origin: SimTime::from_secs(10),
            n_windows: n,
            replicas: vec![
                ReplicaSeries {
                    tier: 0,
                    replica: 0,
                    name: "apache-0".to_string(),
                    cores: 1,
                    cpu_util: vec![0.5, 0.6],
                    gc_fraction: vec![0.0, 0.0],
                    run_queue: vec![1.0, 2.0],
                    threads: Some(PoolSeries {
                        capacity: 8,
                        in_use: vec![4.0, 8.0],
                        waiting: vec![0.0, 2.0],
                        saturated: vec![0.0, 1.0],
                    }),
                    db_conns: None,
                    lingering: Some(vec![0.5, 3.0]),
                },
                ReplicaSeries {
                    tier: 1,
                    replica: 0,
                    name: "tomcat-0".to_string(),
                    cores: 1,
                    cpu_util: vec![0.8, 0.7],
                    gc_fraction: vec![0.1, 0.2],
                    run_queue: vec![3.0, 3.0],
                    threads: None,
                    db_conns: None,
                    lingering: None,
                },
            ],
            client: ClientSeries {
                threshold_secs: 1.0,
                completed: vec![5.0, 3.0],
                good: vec![5.0, 2.0],
                timed_out: vec![0.0, 1.0],
                shed: vec![0.0, 0.0],
                failed: vec![0.0, 0.0],
                retries: vec![0.0, 1.0],
                hedged: vec![0.0, 1.0],
                degraded: vec![0.0, 0.0],
                breaker_transitions: vec![0.0, 2.0],
                quantiles: vec![[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]],
                slo: None,
                overall,
            },
        }
    }

    #[test]
    fn csv_shape_and_determinism() {
        let m = sample_metrics();
        let csv = to_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        // header + (2 replicas + 1 client) per window x 2 windows
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("0,0,apache-0,0.500000,"));
        assert!(lines[3].starts_with("0,0,client,"));
        // Resilience counters land in the second window's client row.
        assert!(
            lines[6].contains(",1.000000,0,2.000000,"),
            "hedged/degraded/breaker columns: {}",
            lines[6]
        );
        let field_count = CSV_HEADER.split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), field_count, "{l}");
        }
        assert_eq!(csv, to_csv(&m), "export must be deterministic");
    }

    #[test]
    fn jsonl_one_object_per_window() {
        let m = sample_metrics();
        let jsonl = to_jsonl(&m);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        assert!(lines[0].contains("\"name\":\"apache-0\""));
        assert!(lines[1].contains("\"lingering\":3.000000"));
        assert!(lines[1].contains("\"hedged\":1.000000"));
        assert!(lines[1].contains("\"breaker_transitions\":2.000000"));
    }

    #[test]
    fn gnuplot_files_have_header_and_rows() {
        let m = sample_metrics();
        let files = gnuplot_series(&m);
        assert_eq!(files.len(), 3);
        for (name, content) in &files {
            let lines: Vec<&str> = content.lines().collect();
            assert!(lines[0].starts_with("# t_secs"), "{name}: {}", lines[0]);
            assert_eq!(lines.len(), 1 + m.n_windows, "{name}");
        }
    }

    #[test]
    fn dashboard_mentions_every_replica_and_diagnosis() {
        let m = sample_metrics();
        let text = dashboard(&m);
        assert!(text.contains("apache-0") && text.contains("tomcat-0"));
        assert!(text.contains("diagnosis:"));
    }

    #[test]
    fn sink_spec_parsing() {
        let s = MetricsSink::parse("out/metrics.csv").unwrap();
        assert_eq!(s.path, PathBuf::from("out/metrics.csv"));
        assert_eq!(s.window, SimTime::from_millis(100));
        let s = MetricsSink::parse("out/m.csv:250").unwrap();
        assert_eq!(s.path, PathBuf::from("out/m.csv"));
        assert_eq!(s.window, SimTime::from_millis(250));
        assert!(MetricsSink::parse("").is_err());
        assert!(MetricsSink::parse(":250").is_err());
        assert!(MetricsSink::parse("x.csv:0").is_err());
    }
}
