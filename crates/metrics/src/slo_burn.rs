//! Burn-rate SLO alerting over the windowed client series.
//!
//! An [`SloPolicy`] states an objective — "`target` of requests finish
//! within `threshold_secs`" (e.g. 99% within 500 ms). The error *budget* is
//! `1 − target`; the **burn rate** of a window is the fraction of its
//! requests that violated the objective divided by the budget, so burn 1.0
//! exactly spends the budget, burn 14.4 exhausts a 30-day budget in ~2
//! days. Following the SRE multiwindow recipe, [`alerts`] scans the series
//! with two moving averages — a short window that must be hot (to page
//! fast) and a long window that must also be hot (to suppress blips) — and
//! emits a [`BurnAlert`] stream: `Page` for the fast-burn pair, `Ticket`
//! for the slow-burn pair.
//!
//! The per-window violation counts come from
//! [`MetricsRegistry::with_slo`](crate::MetricsRegistry::with_slo): one
//! compare-and-increment on the existing completion hook, so the policy is
//! as passive as the rest of the metrics layer.

use crate::timeseries::ClientSeries;

/// A latency service-level objective: `target` fraction of requests within
/// `threshold_secs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Target success fraction, e.g. `0.99`.
    pub target: f64,
    /// Latency threshold in seconds, e.g. `0.5`.
    pub threshold_secs: f64,
}

impl SloPolicy {
    /// Construct, validating `0 < target < 1` and a positive threshold.
    pub fn new(target: f64, threshold_secs: f64) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "SLO target must be a fraction in (0, 1)"
        );
        assert!(threshold_secs > 0.0, "SLO threshold must be positive");
        SloPolicy {
            target,
            threshold_secs,
        }
    }

    /// Parse the `P:MS` CLI form: percentile target and millisecond
    /// threshold, e.g. `99:500` = 99% within 500 ms.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (p, ms) = s
            .split_once(':')
            .ok_or_else(|| format!("SLO '{s}' must be P:MS, e.g. 99:500"))?;
        let p: f64 = p
            .trim()
            .parse()
            .map_err(|_| format!("SLO '{s}': '{p}' is not a percentile"))?;
        let ms: f64 = ms
            .trim()
            .parse()
            .map_err(|_| format!("SLO '{s}': '{ms}' is not a millisecond count"))?;
        if !(0.0..100.0).contains(&p) || p <= 0.0 {
            return Err(format!("SLO '{s}': percentile must be in (0, 100)"));
        }
        if ms <= 0.0 {
            return Err(format!("SLO '{s}': threshold must be positive"));
        }
        Ok(SloPolicy::new(p / 100.0, ms / 1e3))
    }

    /// The error budget `1 − target`.
    pub fn budget(&self) -> f64 {
        1.0 - self.target
    }
}

impl std::fmt::Display for SloPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}% < {:.0}ms",
            self.target * 100.0,
            self.threshold_secs * 1e3
        )
    }
}

/// Per-window SLO violation counts attached to a [`ClientSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloBurnSeries {
    /// The objective the counts were taken against.
    pub policy: SloPolicy,
    /// Responses over the threshold (plus failures) per window.
    pub over: Vec<f64>,
}

/// Alert severity, mirroring the SRE workbook's paging/ticketing split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fast burn: the budget is being consumed at page-worthy speed.
    Page,
    /// Slow burn: sustained over-budget consumption worth a ticket.
    Ticket,
}

impl Severity {
    /// Stable label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Page => "page",
            Severity::Ticket => "ticket",
        }
    }
}

/// One alert: at `window` the `severity` condition held with the given
/// short-window burn rate.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnAlert {
    /// Window index where the condition fired.
    pub window: usize,
    /// Window start in seconds from the measurement origin.
    pub start_secs: f64,
    /// Short-window average burn rate at that point.
    pub burn: f64,
    /// Paging vs ticketing condition.
    pub severity: Severity,
}

/// Fast-burn threshold (×budget) over the short window pair.
pub const PAGE_BURN: f64 = 14.4;
/// Slow-burn threshold (×budget) over the long window pair.
pub const TICKET_BURN: f64 = 3.0;

/// Per-window burn rates: `violations / total / budget`, 0 for empty
/// windows. `total` counts completions plus terminal failures — the same
/// population the violation counter saw.
pub fn burn_rates(client: &ClientSeries) -> Vec<f64> {
    let Some(slo) = client.slo.as_ref() else {
        return Vec::new();
    };
    let budget = slo.policy.budget();
    slo.over
        .iter()
        .enumerate()
        .map(|(i, &over)| {
            let total = client.completed.get(i).copied().unwrap_or(0.0)
                + client.timed_out.get(i).copied().unwrap_or(0.0)
                + client.shed.get(i).copied().unwrap_or(0.0)
                + client.failed.get(i).copied().unwrap_or(0.0);
            if total <= 0.0 {
                0.0
            } else {
                (over / total) / budget
            }
        })
        .collect()
}

/// Multiwindow burn-rate alert stream. `window_secs` is the metrics window
/// width; the short/long averaging windows are 5 and 30 metrics windows —
/// at the default 100 ms cadence that is 0.5 s and 3 s of simulated time,
/// scale-compressed from the SRE workbook's 5 m/1 h pair. An alert fires at
/// the first window where both averages cross the severity threshold and
/// re-arms once the short average drops back under.
pub fn alerts(client: &ClientSeries, window_secs: f64) -> Vec<BurnAlert> {
    let burns = burn_rates(client);
    const SHORT: usize = 5;
    const LONG: usize = 30;
    let avg = |i: usize, span: usize| {
        let lo = (i + 1).saturating_sub(span);
        let s: f64 = burns[lo..=i].iter().sum();
        s / (i - lo + 1) as f64
    };
    let mut out = Vec::new();
    let mut paging = false;
    let mut ticketing = false;
    for i in 0..burns.len() {
        let short = avg(i, SHORT);
        let long = avg(i, LONG);
        let page = short >= PAGE_BURN && long >= PAGE_BURN;
        let ticket = short >= TICKET_BURN && long >= TICKET_BURN;
        if page && !paging {
            out.push(BurnAlert {
                window: i,
                start_secs: i as f64 * window_secs,
                burn: short,
                severity: Severity::Page,
            });
        } else if ticket && !page && !ticketing && !paging {
            out.push(BurnAlert {
                window: i,
                start_secs: i as f64 * window_secs,
                burn: short,
                severity: Severity::Ticket,
            });
        }
        paging = page;
        ticketing = ticket;
    }
    out
}

/// Render an alert stream as one line per alert (dashboard text output).
pub fn render_alerts(alerts: &[BurnAlert]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&format!(
            "[{}] t={:.1}s window {} burn {:.1}x budget\n",
            a.severity.label(),
            a.start_secs,
            a.window,
            a.burn
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::QuantileSketch;

    fn client(completed: Vec<f64>, over: Vec<f64>) -> ClientSeries {
        let n = completed.len();
        ClientSeries {
            threshold_secs: 0.5,
            good: completed.clone(),
            completed,
            timed_out: vec![0.0; n],
            shed: vec![0.0; n],
            failed: vec![0.0; n],
            retries: vec![0.0; n],
            hedged: vec![0.0; n],
            degraded: vec![0.0; n],
            breaker_transitions: vec![0.0; n],
            quantiles: vec![[0.0; 3]; n],
            slo: Some(SloBurnSeries {
                policy: SloPolicy::new(0.99, 0.5),
                over,
            }),
            overall: QuantileSketch::response_times(),
        }
    }

    #[test]
    fn parse_round_trips_the_cli_form() {
        let p = SloPolicy::parse("99:500").expect("valid");
        assert!((p.target - 0.99).abs() < 1e-12);
        assert!((p.threshold_secs - 0.5).abs() < 1e-12);
        assert!((p.budget() - 0.01).abs() < 1e-12);
        assert_eq!(p.to_string(), "99% < 500ms");
        assert!(SloPolicy::parse("99").is_err());
        assert!(SloPolicy::parse("0:500").is_err());
        assert!(SloPolicy::parse("99:-1").is_err());
        assert!(SloPolicy::parse("150:500").is_err());
    }

    #[test]
    fn burn_is_violation_fraction_over_budget() {
        // 100 requests, 2 violations, budget 1% → burn 2.0.
        let c = client(vec![100.0], vec![2.0]);
        let b = burn_rates(&c);
        assert_eq!(b.len(), 1);
        assert!((b[0] - 2.0).abs() < 1e-9);
        // No SLO series → empty.
        let mut plain = client(vec![100.0], vec![0.0]);
        plain.slo = None;
        assert!(burn_rates(&plain).is_empty());
    }

    #[test]
    fn sustained_fast_burn_pages_once() {
        // 50% violating with 1% budget → burn 50 ≫ 14.4 in every window.
        let n = 40;
        let c = client(vec![100.0; n], vec![50.0; n]);
        let a = alerts(&c, 0.1);
        let pages: Vec<_> = a.iter().filter(|x| x.severity == Severity::Page).collect();
        assert_eq!(pages.len(), 1, "hysteresis: one page, not one per window");
        assert_eq!(pages[0].window, 0);
    }

    #[test]
    fn slow_burn_tickets_without_paging() {
        // 5% violating → burn 5: over ticket (3) but under page (14.4).
        let n = 40;
        let c = client(vec![100.0; n], vec![5.0; n]);
        let a = alerts(&c, 0.1);
        assert!(!a.is_empty());
        assert!(a.iter().all(|x| x.severity == Severity::Ticket));
        assert_eq!(a.len(), 1);
        assert!(!render_alerts(&a).is_empty());
    }

    #[test]
    fn healthy_series_raises_nothing() {
        let c = client(vec![100.0; 40], vec![0.0; 40]);
        assert!(alerts(&c, 0.1).is_empty());
        assert_eq!(render_alerts(&[]), "");
    }
}
