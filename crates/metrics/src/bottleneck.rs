//! Multi-bottleneck classification — the case Algorithm 1 excludes.
//!
//! The paper's first assumption is a *single* hardware bottleneck; "in a
//! multi-bottleneck scenario the saturation of hardware resources may
//! oscillate among multiple servers located in different tiers" (§IV-B,
//! citing Malkowski et al., IISWC'09). This module implements the
//! corresponding detector over per-second utilization series, so the
//! algorithm can *refuse* with a diagnosis instead of mis-tuning:
//!
//! * **StableSaturated** — high average utilization, rarely below the
//!   saturation band: the classic single bottleneck.
//! * **Oscillating** — the resource repeatedly enters and leaves the
//!   saturation band: a participant in a multi-bottleneck.
//! * **Unsaturated** — never a constraint.

/// Classification of one resource's utilization series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationClass {
    /// Persistently saturated: the single-bottleneck case.
    StableSaturated,
    /// Alternates between saturated and idle: multi-bottleneck participant.
    Oscillating,
    /// Not a constraint.
    Unsaturated,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct BottleneckDetector {
    /// Utilization at or above which a sample counts as saturated.
    pub saturation_level: f64,
    /// Fraction of saturated samples above which the resource is considered
    /// persistently saturated.
    pub stable_fraction: f64,
    /// Fraction of saturated samples below which the resource is considered
    /// unsaturated.
    pub idle_fraction: f64,
    /// Minimum number of saturation episodes (entries into the band) for the
    /// oscillation diagnosis.
    pub min_episodes: usize,
}

impl Default for BottleneckDetector {
    fn default() -> Self {
        BottleneckDetector {
            saturation_level: 0.95,
            stable_fraction: 0.85,
            idle_fraction: 0.15,
            min_episodes: 3,
        }
    }
}

/// Per-resource analysis result.
#[derive(Debug, Clone)]
pub struct SaturationAnalysis {
    /// Classification.
    pub class: SaturationClass,
    /// Fraction of samples in the saturation band.
    pub saturated_fraction: f64,
    /// Number of distinct saturation episodes.
    pub episodes: usize,
    /// Mean utilization.
    pub mean_util: f64,
}

impl BottleneckDetector {
    /// Classify one per-second utilization series.
    pub fn classify(&self, series: &[f64]) -> SaturationAnalysis {
        if series.is_empty() {
            return SaturationAnalysis {
                class: SaturationClass::Unsaturated,
                saturated_fraction: 0.0,
                episodes: 0,
                mean_util: 0.0,
            };
        }
        let n = series.len() as f64;
        let saturated: Vec<bool> = series.iter().map(|&u| u >= self.saturation_level).collect();
        let frac = saturated.iter().filter(|&&s| s).count() as f64 / n;
        let mut episodes = 0usize;
        let mut prev = false;
        for &s in &saturated {
            if s && !prev {
                episodes += 1;
            }
            prev = s;
        }
        let mean_util = series.iter().sum::<f64>() / n;
        let class = if frac >= self.stable_fraction {
            SaturationClass::StableSaturated
        } else if frac <= self.idle_fraction && episodes < self.min_episodes {
            SaturationClass::Unsaturated
        } else if episodes >= self.min_episodes {
            SaturationClass::Oscillating
        } else if frac > self.idle_fraction {
            // A single long saturated stretch covering a middling fraction:
            // treat as oscillating (entering and leaving the band once is
            // still not a stable bottleneck).
            SaturationClass::Oscillating
        } else {
            SaturationClass::Unsaturated
        };
        SaturationAnalysis {
            class,
            saturated_fraction: frac,
            episodes,
            mean_util,
        }
    }

    /// Diagnose a whole system: returns `(index, analysis)` per series and
    /// whether the system is a clean single-bottleneck case.
    pub fn diagnose(&self, series: &[(&str, &[f64])]) -> SystemDiagnosis {
        let per_resource: Vec<(String, SaturationAnalysis)> = series
            .iter()
            .map(|(name, s)| ((*name).to_string(), self.classify(s)))
            .collect();
        let stable: Vec<&String> = per_resource
            .iter()
            .filter(|(_, a)| a.class == SaturationClass::StableSaturated)
            .map(|(n, _)| n)
            .collect();
        let oscillating: Vec<&String> = per_resource
            .iter()
            .filter(|(_, a)| a.class == SaturationClass::Oscillating)
            .map(|(n, _)| n)
            .collect();
        let verdict = match (stable.len(), oscillating.len()) {
            (1, 0) => SystemVerdict::SingleBottleneck,
            (0, 0) => SystemVerdict::NoBottleneck,
            (0, _) => SystemVerdict::MultiBottleneck,
            (1, _) => SystemVerdict::MultiBottleneck,
            _ => SystemVerdict::MultiBottleneck,
        };
        SystemDiagnosis {
            verdict,
            per_resource,
        }
    }
}

/// Overall system verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemVerdict {
    /// Exactly one persistently saturated resource: Algorithm 1 applies.
    SingleBottleneck,
    /// Saturation oscillates or spans multiple resources: Algorithm 1's
    /// assumption is violated.
    MultiBottleneck,
    /// Nothing saturated: increase the workload.
    NoBottleneck,
}

/// Diagnosis of a whole monitored system.
#[derive(Debug, Clone)]
pub struct SystemDiagnosis {
    /// System-level verdict.
    pub verdict: SystemVerdict,
    /// Per-resource analyses.
    pub per_resource: Vec<(String, SaturationAnalysis)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> BottleneckDetector {
        BottleneckDetector::default()
    }

    #[test]
    fn stable_saturation_detected() {
        let series: Vec<f64> = (0..120)
            .map(|i| 0.97 + 0.02 * ((i % 3) as f64) / 3.0)
            .collect();
        let a = det().classify(&series);
        assert_eq!(a.class, SaturationClass::StableSaturated);
        assert!(a.saturated_fraction > 0.9);
        assert_eq!(a.episodes, 1);
    }

    #[test]
    fn idle_resource_unsaturated() {
        let series = vec![0.4; 120];
        let a = det().classify(&series);
        assert_eq!(a.class, SaturationClass::Unsaturated);
        assert_eq!(a.episodes, 0);
        assert!((a.mean_util - 0.4).abs() < 1e-12);
    }

    #[test]
    fn oscillation_detected() {
        // 10 s saturated / 10 s idle, repeated — the IISWC'09 signature.
        let mut series = Vec::new();
        for cycle in 0..6 {
            let _ = cycle;
            series.extend(std::iter::repeat_n(0.99, 10));
            series.extend(std::iter::repeat_n(0.30, 10));
        }
        let a = det().classify(&series);
        assert_eq!(a.class, SaturationClass::Oscillating);
        assert_eq!(a.episodes, 6);
    }

    #[test]
    fn empty_series_is_unsaturated() {
        let a = det().classify(&[]);
        assert_eq!(a.class, SaturationClass::Unsaturated);
    }

    #[test]
    fn single_bottleneck_system_diagnosis() {
        let busy: Vec<f64> = vec![0.99; 60];
        let idle: Vec<f64> = vec![0.5; 60];
        let d = det().diagnose(&[("tomcat", &busy), ("cjdbc", &idle), ("mysql", &idle)]);
        assert_eq!(d.verdict, SystemVerdict::SingleBottleneck);
    }

    #[test]
    fn multi_bottleneck_system_diagnosis() {
        // Two resources alternating in anti-phase.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for cycle in 0..6 {
            let _ = cycle;
            a.extend(std::iter::repeat_n(0.99, 10));
            a.extend(std::iter::repeat_n(0.40, 10));
            b.extend(std::iter::repeat_n(0.40, 10));
            b.extend(std::iter::repeat_n(0.99, 10));
        }
        let d = det().diagnose(&[("tomcat", &a), ("mysql", &b)]);
        assert_eq!(d.verdict, SystemVerdict::MultiBottleneck);
        assert!(d
            .per_resource
            .iter()
            .all(|(_, an)| an.class == SaturationClass::Oscillating));
    }

    #[test]
    fn no_bottleneck_system_diagnosis() {
        let idle: Vec<f64> = vec![0.5; 60];
        let d = det().diagnose(&[("a", &idle), ("b", &idle)]);
        assert_eq!(d.verdict, SystemVerdict::NoBottleneck);
    }
}
