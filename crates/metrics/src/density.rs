//! Utilization density graphs.
//!
//! The paper's Fig. 4(b,c,e,f) plot, for each workload, the probability
//! density of the per-second thread-pool utilization samples — this exposes
//! *soft-resource saturation* (probability mass piling up at 100%) that a
//! plain time-average would smear out. [`UtilDensity`] accumulates one run's
//! samples; the bench harness assembles one density per workload point.

/// Number of utilization bins (5% each, plus an exact-100% bin).
pub const BINS: usize = 21;

/// A probability density over utilization samples in `[0,1]`.
#[derive(Debug, Clone)]
pub struct UtilDensity {
    counts: [u64; BINS],
    total: u64,
}

impl UtilDensity {
    /// New empty density.
    pub fn new() -> Self {
        UtilDensity {
            counts: [0; BINS],
            total: 0,
        }
    }

    /// Record one utilization sample (clamped into `[0,1]`). Samples at or
    /// above 99.5% land in the dedicated saturation bin.
    pub fn add(&mut self, util: f64) {
        let u = util.clamp(0.0, 1.0);
        let idx = if u >= 0.995 {
            BINS - 1
        } else {
            (u * 20.0).floor() as usize
        };
        self.counts[idx.min(BINS - 1)] += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The normalized density (sums to 1.0; all zeros when empty).
    pub fn pdf(&self) -> [f64; BINS] {
        let t = self.total.max(1) as f64;
        std::array::from_fn(|i| self.counts[i] as f64 / t)
    }

    /// Probability mass at (essentially) full utilization — the paper's
    /// saturation indicator.
    pub fn saturation_mass(&self) -> f64 {
        self.pdf()[BINS - 1]
    }

    /// Mean utilization of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let pdf = self.pdf();
        let mut mean = 0.0;
        for (i, p) in pdf.iter().enumerate() {
            let center = if i == BINS - 1 {
                1.0
            } else {
                (i as f64 + 0.5) / 20.0
            };
            mean += center * p;
        }
        mean
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64; BINS] {
        &self.counts
    }

    /// Rebuild a density from raw bin counts (the inverse of
    /// [`counts`](Self::counts) — used when deserializing persisted run reports).
    pub fn from_counts(counts: [u64; BINS]) -> Self {
        let total = counts.iter().sum();
        UtilDensity { counts, total }
    }
}

impl Default for UtilDensity {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_expected_bins() {
        let mut d = UtilDensity::new();
        d.add(0.0); // bin 0
        d.add(0.049); // bin 0
        d.add(0.05); // bin 1
        d.add(0.52); // bin 10
        d.add(0.999); // saturation bin
        d.add(1.0); // saturation bin
        assert_eq!(d.counts()[0], 2);
        assert_eq!(d.counts()[1], 1);
        assert_eq!(d.counts()[10], 1);
        assert_eq!(d.counts()[BINS - 1], 2);
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn pdf_sums_to_one() {
        let mut d = UtilDensity::new();
        for i in 0..997 {
            d.add(i as f64 / 1000.0);
        }
        let sum: f64 = d.pdf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_mass_detects_bottleneck() {
        let mut sat = UtilDensity::new();
        let mut unsat = UtilDensity::new();
        for _ in 0..100 {
            sat.add(1.0);
            unsat.add(0.6);
        }
        assert!(sat.saturation_mass() > 0.99);
        assert!(unsat.saturation_mass() < 0.01);
    }

    #[test]
    fn out_of_range_samples_clamped() {
        let mut d = UtilDensity::new();
        d.add(-0.3);
        d.add(1.7);
        assert_eq!(d.counts()[0], 1);
        assert_eq!(d.counts()[BINS - 1], 1);
    }

    #[test]
    fn mean_is_reasonable() {
        let mut d = UtilDensity::new();
        for _ in 0..10 {
            d.add(0.5);
        }
        assert!((d.mean() - 0.525).abs() < 0.03); // bin-center quantization
        assert_eq!(UtilDensity::new().mean(), 0.0);
    }
}
