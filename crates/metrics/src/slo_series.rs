//! Per-interval SLO-satisfaction series.
//!
//! The intervention analysis of Algorithm 1 ("evaluate the stability of the
//! SLO-satisfaction of the system as workload increases") consumes, for each
//! run, per-second samples of the fraction of completing requests that met
//! the SLA threshold. An interval with no completions is recorded as fully
//! satisfied only if the system is genuinely idle — the caller decides by
//! supplying `min_samples`.

use simcore::stats::IntervalSeries;
use simcore::SimTime;

/// Per-interval (good, total) completion counts at one SLA threshold.
#[derive(Debug, Clone)]
pub struct SloSeries {
    threshold_secs: f64,
    good: IntervalSeries,
    total: IntervalSeries,
}

impl SloSeries {
    /// New series with 1 s buckets starting at `origin` (the paper's
    /// "SysStat" cadence).
    pub fn new(origin: SimTime, threshold_secs: f64) -> Self {
        Self::with_bucket(origin, threshold_secs, SimTime::from_secs(1))
    }

    /// New series with buckets of `bucket` width starting at `origin` — the
    /// fine-grained variant used inside the windowed metrics pipeline.
    pub fn with_bucket(origin: SimTime, threshold_secs: f64, bucket: SimTime) -> Self {
        assert!(threshold_secs > 0.0);
        SloSeries {
            threshold_secs,
            good: IntervalSeries::new(origin, bucket),
            total: IntervalSeries::new(origin, bucket),
        }
    }

    /// Per-bucket totals of all completions (good + bad).
    pub fn total_buckets(&self) -> &[f64] {
        self.total.buckets()
    }

    /// Per-bucket totals of completions that met the threshold.
    pub fn good_buckets(&self) -> &[f64] {
        self.good.buckets()
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimTime {
        self.total.interval()
    }

    /// Record a completion at time `t` with response time `rt_secs`.
    pub fn record(&mut self, t: SimTime, rt_secs: f64) {
        self.total.incr(t);
        if rt_secs <= self.threshold_secs {
            self.good.incr(t);
        }
    }

    /// The SLA threshold (seconds).
    pub fn threshold(&self) -> f64 {
        self.threshold_secs
    }

    /// Per-interval satisfaction fractions; intervals with fewer than
    /// `min_samples` completions are skipped.
    pub fn satisfaction_samples(&self, min_samples: u64) -> Vec<f64> {
        let n = self.total.buckets().len().max(self.good.buckets().len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let total = self.total.buckets().get(i).copied().unwrap_or(0.0);
            if (total as u64) < min_samples || total <= 0.0 {
                continue;
            }
            let good = self.good.buckets().get(i).copied().unwrap_or(0.0);
            out.push(good / total);
        }
        out
    }

    /// Overall satisfaction fraction (1.0 when nothing completed).
    pub fn overall(&self) -> f64 {
        let total: f64 = self.total.buckets().iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let good: f64 = self.good.buckets().iter().sum();
        good / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn per_second_fractions() {
        let mut sl = SloSeries::new(SimTime::ZERO, 1.0);
        // Second 0: 2 good, 1 bad. Second 1: all good. Second 2: empty.
        sl.record(SimTime::from_millis(100), 0.5);
        sl.record(SimTime::from_millis(500), 0.9);
        sl.record(SimTime::from_millis(900), 2.0);
        sl.record(s(1), 0.2);
        sl.record(s(3), 0.2);
        let samples = sl.satisfaction_samples(1);
        assert_eq!(samples.len(), 3);
        assert!((samples[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(samples[1], 1.0);
        assert_eq!(samples[2], 1.0);
    }

    #[test]
    fn min_samples_filters_sparse_intervals() {
        let mut sl = SloSeries::new(SimTime::ZERO, 1.0);
        sl.record(SimTime::from_millis(100), 0.1);
        sl.record(s(1), 0.1);
        sl.record(s(1), 0.1);
        let samples = sl.satisfaction_samples(2);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn overall_fraction() {
        let mut sl = SloSeries::new(SimTime::ZERO, 1.0);
        assert_eq!(sl.overall(), 1.0);
        sl.record(s(0), 0.5);
        sl.record(s(0), 5.0);
        assert!((sl.overall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_counts_as_good() {
        let mut sl = SloSeries::new(SimTime::ZERO, 1.0);
        sl.record(s(0), 1.0);
        assert_eq!(sl.overall(), 1.0);
    }

    #[test]
    fn configurable_bucket_width() {
        let mut sl = SloSeries::with_bucket(SimTime::ZERO, 1.0, SimTime::from_millis(100));
        sl.record(SimTime::from_millis(50), 0.5); // window 0, good
        sl.record(SimTime::from_millis(150), 2.0); // window 1, bad
        sl.record(SimTime::from_millis(160), 0.5); // window 1, good
        assert_eq!(sl.bucket(), SimTime::from_millis(100));
        assert_eq!(sl.total_buckets(), &[1.0, 2.0]);
        assert_eq!(sl.good_buckets(), &[1.0, 1.0]);
        let samples = sl.satisfaction_samples(1);
        assert_eq!(samples, vec![1.0, 0.5]);
    }
}
