//! Fine-grained windowed metrics pipeline (`ntier-metrics-ts`).
//!
//! The paper's phenomena — under-allocation soft bottlenecks (§III-A),
//! GC-driven goodput collapse (§III-B, Fig. 8) and the front-tier buffering
//! effect (§III-C, Fig. 10) — were only visible to the authors because they
//! monitored every tier at fine grain, not just end-of-run aggregates. This
//! module is the simulated equivalent: a [`MetricsRegistry`] that collects,
//! per tier replica and per configurable window (default 100 ms sim-time),
//!
//! * CPU utilization, run-queue depth, and GC-overhead fraction,
//! * soft-pool occupancy, wait-queue depth, and saturation,
//! * front-tier linger-close occupancy (the Fig. 10 buffering signal),
//! * client-side throughput/goodput/badput/timeout/shed/retry counts,
//! * per-window response-time quantiles (p50/p95/p99) via
//!   [`QuantileSketch`].
//!
//! Collection is strictly *passive*: the resource models mirror their own
//! state transitions into write-only window accumulators
//! (`simcore::stats::WindowedSignal`), no extra events are scheduled and no
//! randomness is consumed, so a metered run is bit-identical to an
//! unmetered one (asserted against the golden fixtures).

use crate::quantile::QuantileSketch;
use crate::slo_burn::{SloBurnSeries, SloPolicy};
use crate::slo_series::SloSeries;
use simcore::stats::IntervalSeries;
use simcore::SimTime;

/// Default metrics window: 100 ms of simulated time, matching the paper's
/// fine-grained monitoring cadence.
pub const DEFAULT_WINDOW: SimTime = SimTime::from_millis(100);

/// Whether (and how finely) to collect windowed metrics for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsConfig {
    /// No collection — provably changes nothing (golden-hash tested).
    #[default]
    Off,
    /// Collect with the given window width.
    Windowed {
        /// Window width (sim-time).
        window: SimTime,
    },
}

impl MetricsConfig {
    /// Collection at the default 100 ms window.
    pub fn windowed_default() -> Self {
        MetricsConfig::Windowed {
            window: DEFAULT_WINDOW,
        }
    }

    /// Collection at an explicit window width.
    pub fn windowed(window: SimTime) -> Self {
        assert!(window > SimTime::ZERO, "metrics window must be positive");
        MetricsConfig::Windowed { window }
    }

    /// Whether collection is enabled.
    pub fn enabled(&self) -> bool {
        matches!(self, MetricsConfig::Windowed { .. })
    }

    /// The window width, if enabled.
    pub fn window(&self) -> Option<SimTime> {
        match self {
            MetricsConfig::Off => None,
            MetricsConfig::Windowed { window } => Some(*window),
        }
    }
}

/// Client-visible failure classes (mirrors the tier model's request
/// outcomes without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The client gave up waiting.
    TimedOut,
    /// Admission control turned the request away.
    Shed,
    /// A tier returned an error page.
    Failed,
}

/// Per-window series for one soft pool of one replica.
#[derive(Debug, Clone)]
pub struct PoolSeries {
    /// Configured capacity (units).
    pub capacity: usize,
    /// Units held, time-averaged per window.
    pub in_use: Vec<f64>,
    /// Wait-queue length, time-averaged per window.
    pub waiting: Vec<f64>,
    /// Fraction of each window spent saturated (full + waiters).
    pub saturated: Vec<f64>,
}

impl PoolSeries {
    /// Per-window occupancy fractions (`in_use / capacity`).
    pub fn occupancy(&self) -> Vec<f64> {
        self.in_use
            .iter()
            .map(|v| v / self.capacity as f64)
            .collect()
    }

    /// Mean saturated fraction across all windows.
    pub fn mean_saturated(&self) -> f64 {
        mean(&self.saturated)
    }
}

/// Per-window series for one tier replica.
#[derive(Debug, Clone)]
pub struct ReplicaSeries {
    /// Position in the tier chain (0 = front).
    pub tier: usize,
    /// Replica index within the tier.
    pub replica: u16,
    /// Display name, e.g. `"tomcat-1"`.
    pub name: String,
    /// CPU cores of the replica.
    pub cores: u32,
    /// CPU utilization per window (busy fraction, includes GC).
    pub cpu_util: Vec<f64>,
    /// Fraction of each window spent in stop-the-world GC.
    pub gc_fraction: Vec<f64>,
    /// CPU run-queue depth (jobs in service), time-averaged per window.
    pub run_queue: Vec<f64>,
    /// Worker/thread pool, if the replica has one.
    pub threads: Option<PoolSeries>,
    /// Outbound DB connection pool, if the replica has one.
    pub db_conns: Option<PoolSeries>,
    /// Workers held in client linger-close (front tier only) per window.
    pub lingering: Option<Vec<f64>>,
}

impl ReplicaSeries {
    /// Mean CPU utilization across windows.
    pub fn mean_cpu(&self) -> f64 {
        mean(&self.cpu_util)
    }

    /// Mean GC fraction across windows.
    pub fn mean_gc(&self) -> f64 {
        mean(&self.gc_fraction)
    }
}

/// Client-side per-window series.
#[derive(Debug, Clone)]
pub struct ClientSeries {
    /// SLA threshold used for the good/bad split (seconds).
    pub threshold_secs: f64,
    /// Completions per window.
    pub completed: Vec<f64>,
    /// Completions within the SLA threshold per window.
    pub good: Vec<f64>,
    /// Client-timeout failures per window.
    pub timed_out: Vec<f64>,
    /// Admission-control rejections per window.
    pub shed: Vec<f64>,
    /// Error-page responses per window.
    pub failed: Vec<f64>,
    /// Client retries issued per window.
    pub retries: Vec<f64>,
    /// Hedge re-issues fired per window (tied requests).
    pub hedged: Vec<f64>,
    /// Brownout cheap-mode activations per window (degraded work units).
    pub degraded: Vec<f64>,
    /// Circuit-breaker phase transitions per window (closed→open,
    /// open→half-open, half-open→closed/open).
    pub breaker_transitions: Vec<f64>,
    /// `[p50, p95, p99]` response time per window (zeros when empty).
    pub quantiles: Vec<[f64; 3]>,
    /// Burn-rate SLO series, present when the run configured an
    /// [`SloPolicy`]: per-window count of responses over the threshold.
    pub slo: Option<SloBurnSeries>,
    /// Merged sketch over the whole measurement period.
    pub overall: QuantileSketch,
}

impl ClientSeries {
    /// Completions that missed the threshold, per window.
    pub fn bad(&self) -> Vec<f64> {
        self.completed
            .iter()
            .zip(&self.good)
            .map(|(t, g)| t - g)
            .collect()
    }
}

/// The assembled result of a metered run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Window width.
    pub window: SimTime,
    /// Start of the measurement period (sim-time).
    pub origin: SimTime,
    /// Number of full windows in the measurement period.
    pub n_windows: usize,
    /// One entry per tier replica, in chain order.
    pub replicas: Vec<ReplicaSeries>,
    /// Client-side counters and quantiles.
    pub client: ClientSeries,
}

impl RunMetrics {
    /// Sorted distinct tier positions present.
    pub fn tiers(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.replicas.iter().map(|r| r.tier).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Replicas of one tier, in replica order.
    pub fn tier_replicas(&self, tier: usize) -> Vec<&ReplicaSeries> {
        self.replicas.iter().filter(|r| r.tier == tier).collect()
    }

    /// Per-window CPU utilization of a tier, averaged across its replicas.
    pub fn tier_cpu(&self, tier: usize) -> Vec<f64> {
        let reps = self.tier_replicas(tier);
        if reps.is_empty() {
            return vec![0.0; self.n_windows];
        }
        (0..self.n_windows)
            .map(|i| {
                reps.iter()
                    .map(|r| r.cpu_util.get(i).copied().unwrap_or(0.0))
                    .sum::<f64>()
                    / reps.len() as f64
            })
            .collect()
    }

    /// Named per-replica CPU utilization series, the direct input for
    /// [`BottleneckDetector::diagnose`](crate::BottleneckDetector::diagnose).
    pub fn cpu_series(&self) -> Vec<(&str, &[f64])> {
        self.replicas
            .iter()
            .map(|r| (r.name.as_str(), r.cpu_util.as_slice()))
            .collect()
    }

    /// Run the multi-bottleneck classifier over the per-replica CPU series.
    pub fn cpu_diagnosis(&self, det: &crate::BottleneckDetector) -> crate::SystemVerdict {
        det.diagnose(&self.cpu_series()).verdict
    }

    /// Wall-clock second of the start of window `i`, relative to the
    /// measurement origin.
    pub fn window_start_secs(&self, i: usize) -> f64 {
        i as f64 * self.window.as_secs_f64()
    }
}

/// Live collection state for one run. The tier model feeds it from existing
/// hooks; [`finish`](Self::finish) assembles the immutable [`RunMetrics`].
#[derive(Debug)]
pub struct MetricsRegistry {
    window: SimTime,
    origin: SimTime,
    n_windows: usize,
    replicas: Vec<ReplicaSeries>,
    slo: SloSeries,
    timed_out: IntervalSeries,
    shed: IntervalSeries,
    failed: IntervalSeries,
    retries: IntervalSeries,
    hedged: IntervalSeries,
    degraded: IntervalSeries,
    breaker_transitions: IntervalSeries,
    slo_policy: Option<(SloPolicy, IntervalSeries)>,
    window_sketches: Vec<QuantileSketch>,
    overall: QuantileSketch,
}

impl MetricsRegistry {
    /// Registry for a measurement period `[origin, origin + runtime)` split
    /// into windows of `window`; `slo_threshold_secs` drives the per-window
    /// good/bad split (the run's first SLA threshold).
    pub fn new(
        window: SimTime,
        origin: SimTime,
        runtime: SimTime,
        slo_threshold_secs: f64,
    ) -> Self {
        assert!(window > SimTime::ZERO, "metrics window must be positive");
        let n_windows = (runtime.as_micros() / window.as_micros()) as usize;
        MetricsRegistry {
            window,
            origin,
            n_windows,
            replicas: Vec::new(),
            slo: SloSeries::with_bucket(origin, slo_threshold_secs, window),
            timed_out: IntervalSeries::new(origin, window),
            shed: IntervalSeries::new(origin, window),
            failed: IntervalSeries::new(origin, window),
            retries: IntervalSeries::new(origin, window),
            hedged: IntervalSeries::new(origin, window),
            degraded: IntervalSeries::new(origin, window),
            breaker_transitions: IntervalSeries::new(origin, window),
            slo_policy: None,
            window_sketches: Vec::new(),
            overall: QuantileSketch::response_times(),
        }
    }

    /// Attach a burn-rate SLO policy: responses slower than its threshold
    /// are additionally counted per window (passive — one compare and one
    /// increment on the existing completion hook).
    pub fn with_slo(mut self, policy: SloPolicy) -> Self {
        let over = IntervalSeries::new(self.origin, self.window);
        self.slo_policy = Some((policy, over));
        self
    }

    /// Window width.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Number of full windows in the measurement period.
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    fn window_index(&self, now: SimTime) -> Option<usize> {
        if now < self.origin {
            return None;
        }
        Some(((now - self.origin).as_micros() / self.window.as_micros()) as usize)
    }

    /// Record a client-visible completion with response time `rt_secs`.
    pub fn record_response(&mut self, now: SimTime, rt_secs: f64) {
        let Some(idx) = self.window_index(now) else {
            return;
        };
        self.slo.record(now, rt_secs);
        if idx >= self.window_sketches.len() {
            self.window_sketches
                .resize_with(idx + 1, QuantileSketch::response_times);
        }
        self.window_sketches[idx].add(rt_secs);
        self.overall.add(rt_secs);
        if let Some((policy, over)) = self.slo_policy.as_mut() {
            if rt_secs > policy.threshold_secs {
                over.incr(now);
            }
        }
    }

    /// Record a client-visible failure. An error page is an SLO violation
    /// (infinite response time), so it also counts against an attached
    /// burn-rate policy.
    pub fn record_failure(&mut self, now: SimTime, kind: FailureKind) {
        match kind {
            FailureKind::TimedOut => self.timed_out.incr(now),
            FailureKind::Shed => self.shed.incr(now),
            FailureKind::Failed => self.failed.incr(now),
        }
        if let Some((_, over)) = self.slo_policy.as_mut() {
            over.incr(now);
        }
    }

    /// Record a client retry being issued.
    pub fn record_retry(&mut self, now: SimTime) {
        self.retries.incr(now);
    }

    /// Record a hedge re-issue firing at the front tier.
    pub fn record_hedge(&mut self, now: SimTime) {
        self.hedged.incr(now);
    }

    /// Record one work unit served in brownout cheap mode.
    pub fn record_degraded(&mut self, now: SimTime) {
        self.degraded.incr(now);
    }

    /// Record a circuit-breaker phase transition on any tier.
    pub fn record_breaker_transition(&mut self, now: SimTime) {
        self.breaker_transitions.incr(now);
    }

    /// Attach the finished series of one replica (called at end-of-measure).
    pub fn push_replica(&mut self, replica: ReplicaSeries) {
        self.replicas.push(replica);
    }

    /// Assemble the immutable run metrics.
    pub fn finish(self) -> RunMetrics {
        let n = self.n_windows;
        let quantiles = (0..n)
            .map(|i| {
                self.window_sketches
                    .get(i)
                    .map(|s| s.p50_p95_p99())
                    .unwrap_or([0.0; 3])
            })
            .collect();
        let client = ClientSeries {
            threshold_secs: self.slo.threshold(),
            completed: fit(self.slo.total_buckets(), n),
            good: fit(self.slo.good_buckets(), n),
            timed_out: fit(self.timed_out.buckets(), n),
            shed: fit(self.shed.buckets(), n),
            failed: fit(self.failed.buckets(), n),
            retries: fit(self.retries.buckets(), n),
            hedged: fit(self.hedged.buckets(), n),
            degraded: fit(self.degraded.buckets(), n),
            breaker_transitions: fit(self.breaker_transitions.buckets(), n),
            quantiles,
            slo: self.slo_policy.map(|(policy, over)| SloBurnSeries {
                policy,
                over: fit(over.buckets(), n),
            }),
            overall: self.overall,
        };
        RunMetrics {
            window: self.window,
            origin: self.origin,
            n_windows: n,
            replicas: self.replicas,
            client,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Clamp/pad a bucket slice to exactly `n` entries.
fn fit(buckets: &[f64], n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = buckets.iter().copied().take(n).collect();
    v.resize(n, 0.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn off_by_default_and_window_accessors() {
        assert_eq!(MetricsConfig::default(), MetricsConfig::Off);
        assert!(!MetricsConfig::Off.enabled());
        let c = MetricsConfig::windowed_default();
        assert!(c.enabled());
        assert_eq!(c.window(), Some(ms(100)));
    }

    #[test]
    fn client_counters_land_in_their_windows() {
        let mut reg = MetricsRegistry::new(ms(100), ms(1000), ms(300), 1.0);
        assert_eq!(reg.n_windows(), 3);
        reg.record_response(ms(1010), 0.5); // window 0, good
        reg.record_response(ms(1150), 2.0); // window 1, bad
        reg.record_failure(ms(1150), FailureKind::TimedOut);
        reg.record_failure(ms(1210), FailureKind::Shed);
        reg.record_retry(ms(1250));
        reg.record_response(ms(900), 0.1); // before origin: dropped
        let m = reg.finish();
        assert_eq!(m.client.completed, vec![1.0, 1.0, 0.0]);
        assert_eq!(m.client.good, vec![1.0, 0.0, 0.0]);
        assert_eq!(m.client.bad(), vec![0.0, 1.0, 0.0]);
        assert_eq!(m.client.timed_out, vec![0.0, 1.0, 0.0]);
        assert_eq!(m.client.shed, vec![0.0, 0.0, 1.0]);
        assert_eq!(m.client.retries, vec![0.0, 0.0, 1.0]);
        assert_eq!(m.client.quantiles[0], [0.5, 0.5, 0.5]);
        assert_eq!(m.client.quantiles[2], [0.0, 0.0, 0.0]);
        assert_eq!(m.client.overall.count(), 2);
    }

    #[test]
    fn tier_cpu_averages_replicas() {
        let mut reg = MetricsRegistry::new(ms(100), SimTime::ZERO, ms(200), 1.0);
        for (i, util) in [(0u16, 0.2), (1u16, 0.4)] {
            reg.push_replica(ReplicaSeries {
                tier: 1,
                replica: i,
                name: format!("app-{i}"),
                cores: 1,
                cpu_util: vec![util, util],
                gc_fraction: vec![0.0, 0.0],
                run_queue: vec![1.0, 1.0],
                threads: None,
                db_conns: None,
                lingering: None,
            });
        }
        let m = reg.finish();
        let cpu = m.tier_cpu(1);
        assert!((cpu[0] - 0.3).abs() < 1e-12 && (cpu[1] - 0.3).abs() < 1e-12);
        assert_eq!(m.tiers(), vec![1]);
        assert_eq!(m.cpu_series().len(), 2);
    }

    #[test]
    fn resilience_counters_land_in_their_windows() {
        let mut reg = MetricsRegistry::new(ms(100), SimTime::ZERO, ms(300), 1.0);
        reg.record_hedge(ms(50));
        reg.record_degraded(ms(150));
        reg.record_degraded(ms(160));
        reg.record_breaker_transition(ms(250));
        let m = reg.finish();
        assert_eq!(m.client.hedged, vec![1.0, 0.0, 0.0]);
        assert_eq!(m.client.degraded, vec![0.0, 2.0, 0.0]);
        assert_eq!(m.client.breaker_transitions, vec![0.0, 0.0, 1.0]);
        assert!(m.client.slo.is_none());
    }

    #[test]
    fn slo_policy_counts_over_threshold_and_failures() {
        let policy = SloPolicy::new(0.99, 0.5);
        let mut reg = MetricsRegistry::new(ms(100), SimTime::ZERO, ms(200), 1.0).with_slo(policy);
        reg.record_response(ms(10), 0.2); // within SLO
        reg.record_response(ms(20), 0.9); // over threshold
        reg.record_failure(ms(150), FailureKind::Failed); // always a violation
        let m = reg.finish();
        let slo = m.client.slo.expect("policy attached");
        assert_eq!(slo.policy, policy);
        assert_eq!(slo.over, vec![1.0, 1.0]);
    }

    #[test]
    fn pool_series_occupancy() {
        let p = PoolSeries {
            capacity: 4,
            in_use: vec![2.0, 4.0],
            waiting: vec![0.0, 3.0],
            saturated: vec![0.0, 1.0],
        };
        assert_eq!(p.occupancy(), vec![0.5, 1.0]);
        assert!((p.mean_saturated() - 0.5).abs() < 1e-12);
    }
}
