//! # metrics — SLA model, distributions, and monitoring observables
//!
//! The paper's performance model splits throughput by a response-time
//! threshold into **goodput** (requests within the SLA bound) and **badput**
//! (the rest); "the sum of goodput and badput amounts to the traditional
//! definition of throughput" (§II-B). This crate provides:
//!
//! * [`SlaModel`] / [`SlaCounts`] — goodput/badput accounting at one or more
//!   thresholds (the paper uses 0.5 s, 1 s, and 2 s).
//! * [`RtDistribution`] — the fixed-bin response-time distribution of
//!   Fig. 3(c): `[0,.2] [.2,.4] [.4,.6] [.6,.8] [.8,1] [1,1.5] [1.5,2] >2`.
//! * [`UtilDensity`] — per-run utilization probability densities, the
//!   building block of the resource-utilization density graphs (Fig. 4).
//! * [`ServerLog`] — per-server response-time/throughput logging (the
//!   Log4j-style logs that Algorithm 1 consumes: per-tier RTT and TP).
//! * [`SloSeries`] — per-second SLO-satisfaction series feeding the
//!   statistical intervention analysis.
//! * [`RevenueModel`] — the §II-B stepped SLA revenue schedule (earnings for
//!   compliance minus penalties for violations).
//! * [`BottleneckDetector`] — the multi-bottleneck classifier (stable vs
//!   oscillatory saturation; the paper's excluded case, ref. \[9\]).
//! * [`MetricsRegistry`] / [`RunMetrics`] — the fine-grained windowed
//!   metrics pipeline (`ntier-metrics-ts`): per-replica CPU/GC/pool/linger
//!   series and client counters at a configurable window (default 100 ms).
//! * [`QuantileSketch`] — deterministic mergeable log-bucket sketch for
//!   per-window p50/p95/p99 response times.
//! * [`Diagnosis`] — automated classification of a run into the paper's
//!   failure modes (under-allocation, GC over-allocation, buffering effect).
//! * [`export`] — CSV/JSONL dumps, gnuplot-ready figure series, and the
//!   plain-text dashboard.

pub mod bottleneck;
pub mod density;
pub mod diagnosis;
pub mod export;
pub mod quantile;
pub mod revenue;
pub mod rt_dist;
pub mod server_log;
pub mod sla;
pub mod slo_burn;
pub mod slo_series;
pub mod timeseries;

pub use bottleneck::{BottleneckDetector, SaturationClass, SystemVerdict};
pub use density::UtilDensity;
pub use diagnosis::{recovery_time_secs, Diagnosis, DiagnosisRules, Evidence};
pub use export::MetricsSink;
pub use quantile::QuantileSketch;
pub use revenue::{RevenueModel, RevenueStep};
pub use rt_dist::RtDistribution;
pub use server_log::ServerLog;
pub use sla::{SlaCounts, SlaModel};
pub use slo_burn::{BurnAlert, Severity, SloBurnSeries, SloPolicy};
pub use slo_series::SloSeries;
pub use timeseries::{
    ClientSeries, FailureKind, MetricsConfig, MetricsRegistry, PoolSeries, ReplicaSeries,
    RunMetrics,
};
