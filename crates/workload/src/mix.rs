//! Interaction mixes: which interactions a client population issues, and how
//! often.
//!
//! RUBBoS ships two workload modes: **browsing-only** (read interactions
//! only) and a **read/write mix** (~10% writes). The weights below follow the
//! benchmark's transition-table steady state in spirit: story listing and
//! story/comment viewing dominate; search and user pages are occasional;
//! writes are rare.

use crate::catalog::{InteractionCatalog, RwClass};

/// A probability weighting over the interaction catalogue.
#[derive(Debug, Clone)]
pub struct Mix {
    name: &'static str,
    weights: Vec<f64>,
}

impl Mix {
    /// Construct a mix from explicit weights (must match the catalogue size
    /// and contain at least one positive weight).
    pub fn from_weights(
        name: &'static str,
        catalog: &InteractionCatalog,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            catalog.len(),
            "mix weights must cover every interaction"
        );
        assert!(
            weights.iter().any(|&w| w > 0.0) && weights.iter().all(|&w| w >= 0.0),
            "mix needs non-negative weights with positive total"
        );
        Mix { name, weights }
    }

    /// The RUBBoS browsing-only mode: read interactions, no writes.
    pub fn browse_only(catalog: &InteractionCatalog) -> Self {
        let mut w = vec![0.0; catalog.len()];
        let mut set = |name: &str, weight: f64| {
            let id = catalog.id_of(name).expect("catalogue name");
            w[id] = weight;
        };
        set("StoriesOfTheDay", 18.0);
        set("Home", 6.0);
        set("BrowseCategories", 7.0);
        set("BrowseStoriesByCategory", 12.0);
        set("OlderStories", 8.0);
        set("ViewStory", 22.0);
        set("ViewComment", 14.0);
        set("ViewUserInfo", 4.0);
        set("SearchInStories", 4.0);
        set("SearchInComments", 2.0);
        set("SearchInUsers", 1.0);
        set("BrowseStoriesByDate", 2.0);
        Mix::from_weights("browse-only", catalog, w)
    }

    /// The RUBBoS read/write mode: the browse mix plus ~10% submission and
    /// moderation traffic.
    pub fn read_write(catalog: &InteractionCatalog) -> Self {
        let base = Mix::browse_only(catalog);
        let mut w = base.weights;
        // Scale browse weights to 90% and distribute 10% across the write path.
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x *= 0.90 / total;
        }
        let mut set = |name: &str, weight: f64| {
            let id = catalog.id_of(name).expect("catalogue name");
            w[id] += weight;
        };
        set("RegisterUser", 0.005);
        set("Author", 0.010);
        set("SubmitStory", 0.015);
        set("StoreStory", 0.015);
        set("SubmitComment", 0.020);
        set("StoreComment", 0.020);
        set("ModerateComment", 0.005);
        set("StoreModeratorLog", 0.003);
        set("ReviewStories", 0.003);
        set("AcceptStory", 0.002);
        set("RejectStory", 0.002);
        Mix::from_weights("read-write", catalog, w)
    }

    /// Mix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The weight vector (parallel to the catalogue).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fraction of interactions that are writes under this mix.
    pub fn write_fraction(&self, catalog: &InteractionCatalog) -> f64 {
        let total: f64 = self.weights.iter().sum();
        catalog
            .all()
            .iter()
            .zip(&self.weights)
            .filter(|(i, _)| i.class == RwClass::Write)
            .map(|(_, w)| w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::InteractionCatalog;

    #[test]
    fn browse_only_has_no_writes() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        assert_eq!(m.write_fraction(&c), 0.0);
        assert_eq!(m.name(), "browse-only");
    }

    #[test]
    fn read_write_has_roughly_ten_percent_write_path() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::read_write(&c);
        let wf = m.write_fraction(&c);
        // Write-class interactions: Store*/Accept/Reject/Register ≈ 4-6%.
        assert!(wf > 0.02 && wf < 0.12, "write fraction {wf}");
    }

    #[test]
    fn browse_req_ratio_is_near_calibration_target() {
        // DESIGN.md calibrates around Req_ratio ≈ 2.4; keep the mix honest.
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let rr = c.req_ratio(m.weights());
        assert!((2.0..3.0).contains(&rr), "req_ratio {rr}");
    }

    #[test]
    fn browse_mean_tomcat_demand_is_near_calibration_target() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let ms = c.mean_tomcat_ms(m.weights());
        assert!((2.0..3.0).contains(&ms), "tomcat demand {ms} ms");
    }

    #[test]
    #[should_panic(expected = "must cover every interaction")]
    fn wrong_length_weights_rejected() {
        let c = InteractionCatalog::rubbos();
        let _ = Mix::from_weights("bad", &c, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let c = InteractionCatalog::rubbos();
        let mut w = vec![1.0; c.len()];
        w[0] = -1.0;
        let _ = Mix::from_weights("bad", &c, w);
    }
}
