//! The RUBBoS interaction catalogue.
//!
//! RUBBoS exposes 24 interactions (servlets plus the static home page). Each
//! interaction is described by the resources one execution consumes at each
//! tier. The per-type values are synthetic but structured like the real
//! benchmark: listing pages issue several queries, story/comment views issue
//! a couple, writes touch the database harder, and every dynamic page is
//! followed by a couple of cached static-content requests (logo, stylesheet).
//!
//! Absolute demand values are *calibration inputs*, chosen so the simulated
//! testbed saturates at the same workloads as the paper's Emulab deployment
//! (see DESIGN.md §4); the tier models additionally apply global scale knobs.

/// Index of an interaction in the catalogue.
pub type InteractionId = usize;

/// Whether an interaction only reads or also updates the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwClass {
    /// Read-only (browse) interaction.
    Read,
    /// Interaction with at least one write query.
    Write,
}

/// Static description of one interaction type.
#[derive(Debug, Clone)]
pub struct Interaction {
    /// Servlet name, as in RUBBoS.
    pub name: &'static str,
    /// Read or write class.
    pub class: RwClass,
    /// Mean application-server (Tomcat) CPU demand in milliseconds,
    /// *excluding* time blocked on the database.
    pub tomcat_ms: f64,
    /// Number of SQL queries issued per execution.
    pub queries: u32,
    /// Of those, how many are writes (broadcast to every DB replica).
    pub write_queries: u32,
    /// Mean database (MySQL) CPU demand per query, milliseconds.
    pub mysql_ms_per_query: f64,
    /// Trailing static-content requests (cached images/CSS) per execution.
    pub static_requests: u32,
    /// Response size in kilobytes (for the network model).
    pub response_kb: u32,
}

/// The full interaction catalogue plus derived aggregates.
#[derive(Debug, Clone)]
pub struct InteractionCatalog {
    interactions: Vec<Interaction>,
}

impl InteractionCatalog {
    /// The RUBBoS catalogue (24 interactions).
    pub fn rubbos() -> Self {
        // name, class, tomcat_ms, queries, writes, mysql_ms/q, statics, resp_kb
        use RwClass::{Read, Write};
        let rows = vec![
            Interaction {
                name: "StoriesOfTheDay",
                class: Read,
                tomcat_ms: 2.8,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 0.9,
                static_requests: 2,
                response_kb: 24,
            },
            Interaction {
                name: "Home",
                class: Read,
                tomcat_ms: 1.2,
                queries: 1,
                write_queries: 0,
                mysql_ms_per_query: 0.5,
                static_requests: 3,
                response_kb: 12,
            },
            Interaction {
                name: "BrowseCategories",
                class: Read,
                tomcat_ms: 1.8,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.6,
                static_requests: 2,
                response_kb: 10,
            },
            Interaction {
                name: "BrowseStoriesByCategory",
                class: Read,
                tomcat_ms: 2.6,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 0.9,
                static_requests: 2,
                response_kb: 22,
            },
            Interaction {
                name: "OlderStories",
                class: Read,
                tomcat_ms: 2.7,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 1.0,
                static_requests: 2,
                response_kb: 22,
            },
            Interaction {
                name: "ViewStory",
                class: Read,
                tomcat_ms: 2.4,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.8,
                static_requests: 2,
                response_kb: 30,
            },
            Interaction {
                name: "ViewComment",
                class: Read,
                tomcat_ms: 2.2,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.7,
                static_requests: 2,
                response_kb: 18,
            },
            Interaction {
                name: "ViewUserInfo",
                class: Read,
                tomcat_ms: 1.6,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.5,
                static_requests: 2,
                response_kb: 8,
            },
            Interaction {
                name: "SearchInStories",
                class: Read,
                tomcat_ms: 3.2,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 1.4,
                static_requests: 2,
                response_kb: 20,
            },
            Interaction {
                name: "SearchInComments",
                class: Read,
                tomcat_ms: 3.4,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 1.6,
                static_requests: 2,
                response_kb: 20,
            },
            Interaction {
                name: "SearchInUsers",
                class: Read,
                tomcat_ms: 2.0,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.8,
                static_requests: 2,
                response_kb: 10,
            },
            Interaction {
                name: "BrowseStoriesByDate",
                class: Read,
                tomcat_ms: 2.6,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 0.9,
                static_requests: 2,
                response_kb: 22,
            },
            // --- write-path interactions (read/write mix only) ---
            Interaction {
                name: "RegisterUser",
                class: Write,
                tomcat_ms: 2.0,
                queries: 2,
                write_queries: 1,
                mysql_ms_per_query: 1.0,
                static_requests: 1,
                response_kb: 6,
            },
            Interaction {
                name: "Author",
                class: Read,
                tomcat_ms: 1.4,
                queries: 1,
                write_queries: 0,
                mysql_ms_per_query: 0.5,
                static_requests: 1,
                response_kb: 6,
            },
            Interaction {
                name: "SubmitStory",
                class: Read,
                tomcat_ms: 1.2,
                queries: 1,
                write_queries: 0,
                mysql_ms_per_query: 0.4,
                static_requests: 1,
                response_kb: 8,
            },
            Interaction {
                name: "StoreStory",
                class: Write,
                tomcat_ms: 2.8,
                queries: 3,
                write_queries: 2,
                mysql_ms_per_query: 1.4,
                static_requests: 1,
                response_kb: 6,
            },
            Interaction {
                name: "SubmitComment",
                class: Read,
                tomcat_ms: 1.3,
                queries: 1,
                write_queries: 0,
                mysql_ms_per_query: 0.4,
                static_requests: 1,
                response_kb: 8,
            },
            Interaction {
                name: "StoreComment",
                class: Write,
                tomcat_ms: 2.6,
                queries: 3,
                write_queries: 2,
                mysql_ms_per_query: 1.3,
                static_requests: 1,
                response_kb: 6,
            },
            Interaction {
                name: "ModerateComment",
                class: Read,
                tomcat_ms: 1.6,
                queries: 2,
                write_queries: 0,
                mysql_ms_per_query: 0.6,
                static_requests: 1,
                response_kb: 8,
            },
            Interaction {
                name: "StoreModeratorLog",
                class: Write,
                tomcat_ms: 2.2,
                queries: 3,
                write_queries: 2,
                mysql_ms_per_query: 1.2,
                static_requests: 1,
                response_kb: 4,
            },
            Interaction {
                name: "ReviewStories",
                class: Read,
                tomcat_ms: 2.4,
                queries: 3,
                write_queries: 0,
                mysql_ms_per_query: 0.9,
                static_requests: 1,
                response_kb: 16,
            },
            Interaction {
                name: "AcceptStory",
                class: Write,
                tomcat_ms: 2.4,
                queries: 3,
                write_queries: 2,
                mysql_ms_per_query: 1.2,
                static_requests: 1,
                response_kb: 6,
            },
            Interaction {
                name: "RejectStory",
                class: Write,
                tomcat_ms: 2.0,
                queries: 2,
                write_queries: 1,
                mysql_ms_per_query: 1.0,
                static_requests: 1,
                response_kb: 4,
            },
            Interaction {
                name: "StaticContentPage",
                class: Read,
                tomcat_ms: 0.3,
                queries: 0,
                write_queries: 0,
                mysql_ms_per_query: 0.0,
                static_requests: 4,
                response_kb: 40,
            },
        ];
        let cat = InteractionCatalog { interactions: rows };
        debug_assert_eq!(cat.len(), 24);
        cat
    }

    /// Number of interaction types.
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Whether the catalogue is empty (never true for [`rubbos`](Self::rubbos)).
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Interaction by id.
    pub fn get(&self, id: InteractionId) -> &Interaction {
        &self.interactions[id]
    }

    /// All interactions.
    pub fn all(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Look up an interaction id by servlet name.
    pub fn id_of(&self, name: &str) -> Option<InteractionId> {
        self.interactions.iter().position(|i| i.name == name)
    }

    /// Expected queries per interaction under a weight vector — the paper's
    /// `Req_ratio` (average SQL queries per servlet request).
    pub fn req_ratio(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive total");
        self.interactions
            .iter()
            .zip(weights)
            .map(|(i, w)| i.queries as f64 * w)
            .sum::<f64>()
            / total
    }

    /// Expected Tomcat CPU demand (ms) per interaction under a weight vector.
    pub fn mean_tomcat_ms(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        self.interactions
            .iter()
            .zip(weights)
            .map(|(i, w)| i.tomcat_ms * w)
            .sum::<f64>()
            / total
    }

    /// Expected MySQL CPU demand (ms) per *interaction* under a weight vector.
    pub fn mean_mysql_ms(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        self.interactions
            .iter()
            .zip(weights)
            .map(|(i, w)| i.queries as f64 * i.mysql_ms_per_query * w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_24_interactions() {
        let c = InteractionCatalog::rubbos();
        assert_eq!(c.len(), 24);
        assert!(!c.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let c = InteractionCatalog::rubbos();
        let mut names: Vec<_> = c.all().iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn lookup_by_name() {
        let c = InteractionCatalog::rubbos();
        let id = c.id_of("ViewStory").unwrap();
        assert_eq!(c.get(id).name, "ViewStory");
        assert!(c.id_of("NoSuchServlet").is_none());
    }

    #[test]
    fn write_interactions_have_write_queries() {
        let c = InteractionCatalog::rubbos();
        for i in c.all() {
            match i.class {
                RwClass::Write => assert!(i.write_queries >= 1, "{}", i.name),
                RwClass::Read => assert_eq!(i.write_queries, 0, "{}", i.name),
            }
            assert!(i.write_queries <= i.queries, "{}", i.name);
        }
    }

    #[test]
    fn req_ratio_uniform_weights() {
        let c = InteractionCatalog::rubbos();
        let w = vec![1.0; c.len()];
        let rr = c.req_ratio(&w);
        let manual: f64 = c.all().iter().map(|i| i.queries as f64).sum::<f64>() / c.len() as f64;
        assert!((rr - manual).abs() < 1e-12);
    }

    #[test]
    fn req_ratio_respects_weights() {
        let c = InteractionCatalog::rubbos();
        let mut w = vec![0.0; c.len()];
        let view = c.id_of("ViewStory").unwrap();
        w[view] = 1.0;
        assert!((c.req_ratio(&w) - c.get(view).queries as f64).abs() < 1e-12);
    }

    #[test]
    fn demands_are_positive_for_dynamic_pages() {
        let c = InteractionCatalog::rubbos();
        for i in c.all() {
            assert!(i.tomcat_ms > 0.0, "{}", i.name);
            if i.queries > 0 {
                assert!(i.mysql_ms_per_query > 0.0, "{}", i.name);
            }
        }
    }
}
