//! # workload — a RUBBoS-like n-tier benchmark workload
//!
//! RUBBoS is a bulletin-board benchmark modeled on Slashdot: clients browse
//! story listings, read stories and comments, search, and (in the read/write
//! mix) submit stories and comments that moderators review. This crate
//! provides a synthetic equivalent with the same structure:
//!
//! * [`catalog::InteractionCatalog`] — the 24 interaction types with per-type
//!   application-server CPU demand, SQL query counts, per-query database
//!   demand, trailing static-content requests, and response sizes.
//! * [`mix::Mix`] — interaction weightings; [`Mix::browse_only`](mix::Mix::browse_only)
//!   and [`Mix::read_write`](mix::Mix::read_write) mirror the two RUBBoS
//!   workload modes.
//! * [`session::Session`] — a closed-loop client: think (exponential, mean
//!   7 s, the RUBBoS default), issue an interaction chosen by a Markov
//!   transition model, wait for the response, repeat.
//! * [`config::WorkloadConfig`] — population size, think time, and the
//!   ramp-up / runtime / ramp-down schedule of an experiment trial.

pub mod catalog;
pub mod config;
pub mod mix;
pub mod retry;
pub mod session;

pub use catalog::{Interaction, InteractionCatalog, InteractionId};
pub use config::WorkloadConfig;
pub use mix::Mix;
pub use retry::{RetryBucket, RetryBudget, RetryPolicy};
pub use session::{Session, SessionModel, SessionStore};
