//! Experiment-trial schedule and client-population parameters.

use simcore::SimTime;

/// Client-population and trial-schedule configuration.
///
/// The paper's trials are "an 8 minute ramp-up, a 12-minute runtime, and a
/// 30-second ramp-down"; measurements are taken during the runtime period.
/// The simulator defaults to a compressed schedule with the same structure
/// (ramp effects equilibrate much faster in simulation than on a JVM that
/// needs JIT warm-up).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of concurrent emulated users (the paper's "workload").
    pub users: u32,
    /// Mean think time between interactions (exponential).
    pub think_time: SimTime,
    /// Sessions start uniformly over this period, then the system warms up.
    pub ramp_up: SimTime,
    /// Measurement window length.
    pub runtime: SimTime,
    /// Drain period after the measurement window.
    pub ramp_down: SimTime,
}

impl WorkloadConfig {
    /// Compressed default schedule: 30 s ramp-up, 120 s runtime, 5 s ramp-down.
    pub fn new(users: u32) -> Self {
        WorkloadConfig {
            users,
            think_time: SimTime::from_secs(7),
            ramp_up: SimTime::from_secs(30),
            runtime: SimTime::from_secs(120),
            ramp_down: SimTime::from_secs(5),
        }
    }

    /// The paper's full trial schedule (8 min ramp-up, 12 min runtime, 30 s
    /// ramp-down).
    pub fn paper_schedule(users: u32) -> Self {
        WorkloadConfig {
            users,
            think_time: SimTime::from_secs(7),
            ramp_up: SimTime::from_secs(8 * 60),
            runtime: SimTime::from_secs(12 * 60),
            ramp_down: SimTime::from_secs(30),
        }
    }

    /// A short schedule for unit/integration tests.
    pub fn quick(users: u32) -> Self {
        WorkloadConfig {
            users,
            think_time: SimTime::from_secs(7),
            ramp_up: SimTime::from_secs(10),
            runtime: SimTime::from_secs(30),
            ramp_down: SimTime::from_secs(2),
        }
    }

    /// Start of the measurement window.
    pub fn measure_start(&self) -> SimTime {
        self.ramp_up
    }

    /// End of the measurement window.
    pub fn measure_end(&self) -> SimTime {
        self.ramp_up + self.runtime
    }

    /// End of the whole trial.
    pub fn trial_end(&self) -> SimTime {
        self.ramp_up + self.runtime + self.ramp_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_arithmetic() {
        let w = WorkloadConfig::new(1000);
        assert_eq!(w.measure_start(), SimTime::from_secs(30));
        assert_eq!(w.measure_end(), SimTime::from_secs(150));
        assert_eq!(w.trial_end(), SimTime::from_secs(155));
    }

    #[test]
    fn paper_schedule_matches_paper() {
        let w = WorkloadConfig::paper_schedule(5800);
        assert_eq!(w.ramp_up, SimTime::from_secs(480));
        assert_eq!(w.runtime, SimTime::from_secs(720));
        assert_eq!(w.ramp_down, SimTime::from_secs(30));
        assert_eq!(w.users, 5800);
    }

    #[test]
    fn think_time_default_is_rubbos() {
        let w = WorkloadConfig::new(10);
        assert_eq!(w.think_time, SimTime::from_secs(7));
    }
}
