//! Closed-loop client sessions.
//!
//! A session alternates *think* and *interact*. The next interaction is
//! chosen either independently from the mix ([`SessionModel::Iid`]) or from a
//! first-order Markov model seeded by the mix ([`SessionModel::Markov`]) that
//! captures browsing locality (after viewing a story you most likely view its
//! comments or go back to a listing — as in the RUBBoS transition tables).

use crate::catalog::{InteractionCatalog, InteractionId};
use crate::mix::Mix;
use simcore::{RunRng, SimTime};

/// How a session chooses its next interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionModel {
    /// Each interaction drawn independently from the mix.
    Iid,
    /// First-order Markov chain with browsing locality.
    Markov,
}

/// One emulated user.
pub struct Session {
    id: u32,
    rng: RunRng,
    model: SessionModel,
    think_mean_secs: f64,
    last: Option<InteractionId>,
    issued: u64,
}

impl Session {
    /// Create session `id` with a private RNG stream forked from `root`.
    pub fn new(id: u32, root: &RunRng, model: SessionModel, think_time: SimTime) -> Self {
        Session {
            id,
            rng: root.fork_indexed("session", id as u64),
            model,
            think_mean_secs: think_time.as_secs_f64(),
            last: None,
            issued: 0,
        }
    }

    /// Session id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of interactions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Sample the next think time.
    pub fn think_time(&mut self) -> SimTime {
        SimTime::from_secs_f64(self.rng.exp_mean(self.think_mean_secs))
    }

    /// Draw a retry-backoff jitter `u ∈ [0,1)` from this session's own
    /// stream. Only called when a retry is actually scheduled, so sessions
    /// that never fail draw exactly the same sequence as a fault-free run.
    pub fn retry_jitter(&mut self) -> f64 {
        self.rng.uniform01()
    }

    /// Choose the next interaction.
    pub fn next_interaction(&mut self, catalog: &InteractionCatalog, mix: &Mix) -> InteractionId {
        let next = match (self.model, self.last) {
            (SessionModel::Iid, _) | (SessionModel::Markov, None) => {
                self.rng.weighted_index(mix.weights())
            }
            (SessionModel::Markov, Some(prev)) => self.markov_step(catalog, mix, prev),
        };
        self.last = Some(next);
        self.issued += 1;
        next
    }

    /// Markov transition: with probability 0.55 follow a locality rule from
    /// the previous page; otherwise re-draw from the stationary mix. (Mixing
    /// back to the stationary distribution keeps long-run frequencies close
    /// to the mix weights while preserving short-range correlation.)
    fn markov_step(
        &mut self,
        catalog: &InteractionCatalog,
        mix: &Mix,
        prev: InteractionId,
    ) -> InteractionId {
        if !self.rng.chance(0.55) {
            return self.rng.weighted_index(mix.weights());
        }
        let pick = |rng: &mut RunRng, names: &[&str]| -> Option<InteractionId> {
            let candidates: Vec<InteractionId> = names
                .iter()
                .filter_map(|n| catalog.id_of(n))
                .filter(|&id| mix.weights()[id] > 0.0)
                .collect();
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[rng.index(candidates.len())])
            }
        };
        let followers: &[&str] = match catalog.get(prev).name {
            "StoriesOfTheDay"
            | "BrowseStoriesByCategory"
            | "OlderStories"
            | "BrowseStoriesByDate"
            | "ReviewStories" => &["ViewStory", "ViewStory", "ViewComment"],
            "ViewStory" => &[
                "ViewComment",
                "ViewComment",
                "StoriesOfTheDay",
                "ViewUserInfo",
            ],
            "ViewComment" => &[
                "ViewStory",
                "ViewComment",
                "ViewUserInfo",
                "StoriesOfTheDay",
            ],
            "BrowseCategories" => &["BrowseStoriesByCategory"],
            "Home" => &["StoriesOfTheDay", "BrowseCategories", "SearchInStories"],
            "SearchInStories" | "SearchInComments" | "SearchInUsers" => {
                &["ViewStory", "ViewComment", "SearchInStories"]
            }
            "SubmitStory" => &["StoreStory"],
            "SubmitComment" => &["StoreComment"],
            "ModerateComment" => &["StoreModeratorLog"],
            _ => &["StoriesOfTheDay", "Home"],
        };
        pick(&mut self.rng, followers).unwrap_or_else(|| self.rng.weighted_index(mix.weights()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::InteractionCatalog;

    fn setup(model: SessionModel) -> (InteractionCatalog, Mix, Session) {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let root = RunRng::new(42);
        let s = Session::new(0, &root, model, SimTime::from_secs(7));
        (c, m, s)
    }

    #[test]
    fn think_times_have_requested_mean() {
        let (_, _, mut s) = setup(SessionModel::Iid);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| s.think_time().as_secs_f64()).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.4, "mean think {mean}");
    }

    #[test]
    fn iid_frequencies_follow_mix() {
        let (c, m, mut s) = setup(SessionModel::Iid);
        let n = 50_000;
        let mut counts = vec![0u64; c.len()];
        for _ in 0..n {
            counts[s.next_interaction(&c, &m)] += 1;
        }
        let total_w: f64 = m.weights().iter().sum();
        let view = c.id_of("ViewStory").unwrap();
        let expect = m.weights()[view] / total_w;
        let got = counts[view] as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "got {got} expect {expect}");
        // Zero-weight interactions never drawn.
        let reg = c.id_of("RegisterUser").unwrap();
        assert_eq!(counts[reg], 0);
    }

    #[test]
    fn markov_respects_mix_support() {
        let (c, m, mut s) = setup(SessionModel::Markov);
        for _ in 0..20_000 {
            let id = s.next_interaction(&c, &m);
            assert!(
                m.weights()[id] > 0.0,
                "Markov chain left the mix support: {}",
                c.get(id).name
            );
        }
    }

    #[test]
    fn markov_has_browsing_locality() {
        let (c, m, mut s) = setup(SessionModel::Markov);
        let view_story = c.id_of("ViewStory").unwrap();
        let view_comment = c.id_of("ViewComment").unwrap();
        let mut after_story = 0u64;
        let mut story_count = 0u64;
        let mut prev = s.next_interaction(&c, &m);
        for _ in 0..50_000 {
            let next = s.next_interaction(&c, &m);
            if prev == view_story {
                story_count += 1;
                if next == view_comment {
                    after_story += 1;
                }
            }
            prev = next;
        }
        let p = after_story as f64 / story_count as f64;
        // Stationary probability of ViewComment is ~14%; locality should
        // roughly double it.
        assert!(p > 0.25, "P(ViewComment | ViewStory) = {p}");
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let (c, m, mut a) = setup(SessionModel::Markov);
        let (_, _, mut b) = setup(SessionModel::Markov);
        for _ in 0..100 {
            assert_eq!(a.next_interaction(&c, &m), b.next_interaction(&c, &m));
        }
    }

    #[test]
    fn different_sessions_differ() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let root = RunRng::new(42);
        let mut a = Session::new(1, &root, SessionModel::Iid, SimTime::from_secs(7));
        let mut b = Session::new(2, &root, SessionModel::Iid, SimTime::from_secs(7));
        let same = (0..64)
            .filter(|_| a.next_interaction(&c, &m) == b.next_interaction(&c, &m))
            .count();
        assert!(same < 40, "sessions looked identical: {same}/64 matches");
    }

    #[test]
    fn issued_counter_increments() {
        let (c, m, mut s) = setup(SessionModel::Iid);
        assert_eq!(s.issued(), 0);
        s.next_interaction(&c, &m);
        s.next_interaction(&c, &m);
        assert_eq!(s.issued(), 2);
    }
}
