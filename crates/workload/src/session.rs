//! Closed-loop client sessions.
//!
//! A session alternates *think* and *interact*. The next interaction is
//! chosen either independently from the mix ([`SessionModel::Iid`]) or from a
//! first-order Markov model seeded by the mix ([`SessionModel::Markov`]) that
//! captures browsing locality (after viewing a story you most likely view its
//! comments or go back to a listing — as in the RUBBoS transition tables).
//!
//! Two representations share the exact same draw logic (and therefore the
//! exact same random streams):
//!
//! * [`Session`] — one boxed-up emulated user; convenient for unit tests and
//!   small hand-driven loops.
//! * [`SessionStore`] — the hot-path representation: fixed-width ~48-byte
//!   per-session records, materialized lazily in chunks on first touch. A
//!   1M-session closed-loop run touches sessions as their arrivals fire
//!   instead of allocating a million eagerly-constructed `Session`s up
//!   front. Because per-session RNG streams are forked *order-independently*
//!   from the run root (`fork_indexed("session", id)`), lazy materialization
//!   is bit-identical to eager construction.

use crate::catalog::{InteractionCatalog, InteractionId};
use crate::mix::Mix;
use simcore::{RunRng, SimTime};

/// How a session chooses its next interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionModel {
    /// Each interaction drawn independently from the mix.
    Iid,
    /// First-order Markov chain with browsing locality.
    Markov,
}

/// Choose the next interaction for a session, advancing its RNG stream.
///
/// This free function is *the* definition of the session draw sequence —
/// [`Session`] and [`SessionStore`] both delegate here, so the two
/// representations cannot drift apart.
fn choose_next(
    rng: &mut RunRng,
    model: SessionModel,
    last: Option<InteractionId>,
    catalog: &InteractionCatalog,
    mix: &Mix,
) -> InteractionId {
    match (model, last) {
        (SessionModel::Iid, _) | (SessionModel::Markov, None) => rng.weighted_index(mix.weights()),
        (SessionModel::Markov, Some(prev)) => markov_step(rng, catalog, mix, prev),
    }
}

/// Markov transition: with probability 0.55 follow a locality rule from
/// the previous page; otherwise re-draw from the stationary mix. (Mixing
/// back to the stationary distribution keeps long-run frequencies close
/// to the mix weights while preserving short-range correlation.)
fn markov_step(
    rng: &mut RunRng,
    catalog: &InteractionCatalog,
    mix: &Mix,
    prev: InteractionId,
) -> InteractionId {
    if !rng.chance(0.55) {
        return rng.weighted_index(mix.weights());
    }
    let pick = |rng: &mut RunRng, names: &[&str]| -> Option<InteractionId> {
        let candidates: Vec<InteractionId> = names
            .iter()
            .filter_map(|n| catalog.id_of(n))
            .filter(|&id| mix.weights()[id] > 0.0)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.index(candidates.len())])
        }
    };
    let followers: &[&str] = match catalog.get(prev).name {
        "StoriesOfTheDay"
        | "BrowseStoriesByCategory"
        | "OlderStories"
        | "BrowseStoriesByDate"
        | "ReviewStories" => &["ViewStory", "ViewStory", "ViewComment"],
        "ViewStory" => &[
            "ViewComment",
            "ViewComment",
            "StoriesOfTheDay",
            "ViewUserInfo",
        ],
        "ViewComment" => &[
            "ViewStory",
            "ViewComment",
            "ViewUserInfo",
            "StoriesOfTheDay",
        ],
        "BrowseCategories" => &["BrowseStoriesByCategory"],
        "Home" => &["StoriesOfTheDay", "BrowseCategories", "SearchInStories"],
        "SearchInStories" | "SearchInComments" | "SearchInUsers" => {
            &["ViewStory", "ViewComment", "SearchInStories"]
        }
        "SubmitStory" => &["StoreStory"],
        "SubmitComment" => &["StoreComment"],
        "ModerateComment" => &["StoreModeratorLog"],
        _ => &["StoriesOfTheDay", "Home"],
    };
    pick(rng, followers).unwrap_or_else(|| rng.weighted_index(mix.weights()))
}

/// One emulated user.
pub struct Session {
    id: u32,
    rng: RunRng,
    model: SessionModel,
    think_mean_secs: f64,
    last: Option<InteractionId>,
    issued: u64,
}

impl Session {
    /// Create session `id` with a private RNG stream forked from `root`.
    pub fn new(id: u32, root: &RunRng, model: SessionModel, think_time: SimTime) -> Self {
        Session {
            id,
            rng: root.fork_indexed("session", id as u64),
            model,
            think_mean_secs: think_time.as_secs_f64(),
            last: None,
            issued: 0,
        }
    }

    /// Session id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of interactions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Sample the next think time.
    pub fn think_time(&mut self) -> SimTime {
        SimTime::from_secs_f64(self.rng.exp_mean(self.think_mean_secs))
    }

    /// Draw a retry-backoff jitter `u ∈ [0,1)` from this session's own
    /// stream. Only called when a retry is actually scheduled, so sessions
    /// that never fail draw exactly the same sequence as a fault-free run.
    pub fn retry_jitter(&mut self) -> f64 {
        self.rng.uniform01()
    }

    /// Choose the next interaction.
    pub fn next_interaction(&mut self, catalog: &InteractionCatalog, mix: &Mix) -> InteractionId {
        let next = choose_next(&mut self.rng, self.model, self.last, catalog, mix);
        self.last = Some(next);
        self.issued += 1;
        next
    }
}

/// Sessions per lazily-materialized [`SessionStore`] chunk.
const CHUNK: usize = 1024;

/// `last`-interaction sentinel for "no interaction yet".
const NO_LAST: u16 = u16::MAX;

/// Compact fixed-width per-session state (~48 bytes: the 40-byte RNG stream
/// plus a u32 issue counter and a u16 last-interaction index).
struct SessionState {
    rng: RunRng,
    issued: u32,
    last: u16,
}

/// The hot-path session table: compact records, chunked lazy materialization.
///
/// Semantically identical to a `Vec<Session>` built eagerly at start-up —
/// same forked RNG streams, same draw sequences — but a chunk of 1024
/// sessions is only allocated and forked when one of its sessions is first
/// touched (normally by its staged arrival event firing). Peak memory for
/// the session table is ~48 bytes per *touched* session, and run start-up
/// cost no longer scales with the population.
pub struct SessionStore {
    root: RunRng,
    model: SessionModel,
    think_mean_secs: f64,
    users: u32,
    chunks: Vec<Option<Box<[SessionState]>>>,
}

impl SessionStore {
    /// Create the table for `users` sessions whose streams fork from `root`
    /// exactly as [`Session::new`] would fork them.
    pub fn new(users: u32, root: &RunRng, model: SessionModel, think_time: SimTime) -> Self {
        let nchunks = (users as usize).div_ceil(CHUNK);
        SessionStore {
            root: root.clone(),
            model,
            think_mean_secs: think_time.as_secs_f64(),
            users,
            chunks: (0..nchunks).map(|_| None).collect(),
        }
    }

    /// Number of sessions in the table.
    pub fn len(&self) -> usize {
        self.users as usize
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.users == 0
    }

    /// How many chunks have been materialized so far (observability/tests).
    pub fn materialized_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    fn state(&mut self, id: u32) -> &mut SessionState {
        assert!(
            id < self.users,
            "session {id} out of range ({})",
            self.users
        );
        let chunk_idx = (id as usize) / CHUNK;
        let slot = (id as usize) % CHUNK;
        let chunk = &mut self.chunks[chunk_idx];
        if chunk.is_none() {
            let base = chunk_idx * CHUNK;
            let n = CHUNK.min(self.users as usize - base);
            let states: Vec<SessionState> = (0..n)
                .map(|i| SessionState {
                    rng: self.root.fork_indexed("session", (base + i) as u64),
                    issued: 0,
                    last: NO_LAST,
                })
                .collect();
            *chunk = Some(states.into_boxed_slice());
        }
        &mut chunk.as_mut().expect("chunk just materialized")[slot]
    }

    /// Sample session `id`'s next think time.
    pub fn think_time(&mut self, id: u32) -> SimTime {
        let mean = self.think_mean_secs;
        let s = self.state(id);
        SimTime::from_secs_f64(s.rng.exp_mean(mean))
    }

    /// Draw a retry-backoff jitter `u ∈ [0,1)` from session `id`'s stream.
    pub fn retry_jitter(&mut self, id: u32) -> f64 {
        self.state(id).rng.uniform01()
    }

    /// Number of interactions session `id` has issued so far.
    pub fn issued(&mut self, id: u32) -> u64 {
        self.state(id).issued as u64
    }

    /// Choose session `id`'s next interaction.
    pub fn next_interaction(
        &mut self,
        id: u32,
        catalog: &InteractionCatalog,
        mix: &Mix,
    ) -> InteractionId {
        debug_assert!(
            catalog.len() < NO_LAST as usize,
            "interaction ids must fit in u16"
        );
        let model = self.model;
        let s = self.state(id);
        let last = if s.last == NO_LAST {
            None
        } else {
            Some(s.last as InteractionId)
        };
        let next = choose_next(&mut s.rng, model, last, catalog, mix);
        s.last = next as u16;
        s.issued += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::InteractionCatalog;

    fn setup(model: SessionModel) -> (InteractionCatalog, Mix, Session) {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let root = RunRng::new(42);
        let s = Session::new(0, &root, model, SimTime::from_secs(7));
        (c, m, s)
    }

    #[test]
    fn think_times_have_requested_mean() {
        let (_, _, mut s) = setup(SessionModel::Iid);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| s.think_time().as_secs_f64()).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.4, "mean think {mean}");
    }

    #[test]
    fn iid_frequencies_follow_mix() {
        let (c, m, mut s) = setup(SessionModel::Iid);
        let n = 50_000;
        let mut counts = vec![0u64; c.len()];
        for _ in 0..n {
            counts[s.next_interaction(&c, &m)] += 1;
        }
        let total_w: f64 = m.weights().iter().sum();
        let view = c.id_of("ViewStory").unwrap();
        let expect = m.weights()[view] / total_w;
        let got = counts[view] as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "got {got} expect {expect}");
        // Zero-weight interactions never drawn.
        let reg = c.id_of("RegisterUser").unwrap();
        assert_eq!(counts[reg], 0);
    }

    #[test]
    fn markov_respects_mix_support() {
        let (c, m, mut s) = setup(SessionModel::Markov);
        for _ in 0..20_000 {
            let id = s.next_interaction(&c, &m);
            assert!(
                m.weights()[id] > 0.0,
                "Markov chain left the mix support: {}",
                c.get(id).name
            );
        }
    }

    #[test]
    fn markov_has_browsing_locality() {
        let (c, m, mut s) = setup(SessionModel::Markov);
        let view_story = c.id_of("ViewStory").unwrap();
        let view_comment = c.id_of("ViewComment").unwrap();
        let mut after_story = 0u64;
        let mut story_count = 0u64;
        let mut prev = s.next_interaction(&c, &m);
        for _ in 0..50_000 {
            let next = s.next_interaction(&c, &m);
            if prev == view_story {
                story_count += 1;
                if next == view_comment {
                    after_story += 1;
                }
            }
            prev = next;
        }
        let p = after_story as f64 / story_count as f64;
        // Stationary probability of ViewComment is ~14%; locality should
        // roughly double it.
        assert!(p > 0.25, "P(ViewComment | ViewStory) = {p}");
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let (c, m, mut a) = setup(SessionModel::Markov);
        let (_, _, mut b) = setup(SessionModel::Markov);
        for _ in 0..100 {
            assert_eq!(a.next_interaction(&c, &m), b.next_interaction(&c, &m));
        }
    }

    #[test]
    fn different_sessions_differ() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let root = RunRng::new(42);
        let mut a = Session::new(1, &root, SessionModel::Iid, SimTime::from_secs(7));
        let mut b = Session::new(2, &root, SessionModel::Iid, SimTime::from_secs(7));
        let same = (0..64)
            .filter(|_| a.next_interaction(&c, &m) == b.next_interaction(&c, &m))
            .count();
        assert!(same < 40, "sessions looked identical: {same}/64 matches");
    }

    #[test]
    fn issued_counter_increments() {
        let (c, m, mut s) = setup(SessionModel::Iid);
        assert_eq!(s.issued(), 0);
        s.next_interaction(&c, &m);
        s.next_interaction(&c, &m);
        assert_eq!(s.issued(), 2);
    }

    /// The store draws the exact same streams as eagerly-built `Session`s —
    /// per id, regardless of touch order — including across chunk
    /// boundaries.
    #[test]
    fn store_matches_eager_sessions_in_any_touch_order() {
        let c = InteractionCatalog::rubbos();
        let m = Mix::browse_only(&c);
        let root = RunRng::new(0x5eed_0001);
        let users = (CHUNK + 7) as u32; // spans two chunks
        let mut store =
            SessionStore::new(users, &root, SessionModel::Markov, SimTime::from_secs(7));
        // Touch in a scrambled order relative to construction order.
        let ids = [CHUNK as u32 + 3, 0, 512, CHUNK as u32, 7, 1023];
        for &id in &ids {
            let mut eager = Session::new(id, &root, SessionModel::Markov, SimTime::from_secs(7));
            for _ in 0..50 {
                assert_eq!(
                    store.next_interaction(id, &c, &m),
                    eager.next_interaction(&c, &m),
                    "session {id} diverged"
                );
                assert_eq!(store.think_time(id), eager.think_time(), "session {id}");
                assert_eq!(store.retry_jitter(id), eager.retry_jitter(), "session {id}");
            }
            assert_eq!(store.issued(id), eager.issued());
        }
    }

    #[test]
    fn store_materializes_only_touched_chunks() {
        let root = RunRng::new(7);
        let users = (4 * CHUNK) as u32;
        let mut store = SessionStore::new(users, &root, SessionModel::Iid, SimTime::from_secs(7));
        assert_eq!(store.materialized_chunks(), 0);
        assert_eq!(store.len(), users as usize);
        store.think_time(0);
        store.think_time(CHUNK as u32 - 1); // same chunk
        assert_eq!(store.materialized_chunks(), 1);
        store.think_time(3 * CHUNK as u32);
        assert_eq!(store.materialized_chunks(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn store_rejects_out_of_range_ids() {
        let root = RunRng::new(7);
        let mut store = SessionStore::new(4, &root, SessionModel::Iid, SimTime::from_secs(7));
        store.think_time(4);
    }
}
