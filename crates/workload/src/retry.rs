//! Client-side retry policy: max attempts, exponential backoff, and
//! deterministic jitter.
//!
//! A closed-loop client that receives an error page (timeout, shed, backend
//! failure) either *abandons* the interaction and goes back to thinking, or
//! *retries* the same interaction after a backoff delay. The policy is pure
//! data: the jitter draw comes from the session's own RNG stream (see
//! [`crate::Session::retry_jitter`]) so runs stay bit-deterministic and —
//! crucially — policies that never retry draw nothing.

use simcore::SimTime;

/// Client retry policy applied to failed interactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per interaction, including the first
    /// (1 = never retry).
    pub max_attempts: u8,
    /// Backoff before the first retry.
    pub backoff_base: SimTime,
    /// Multiplier applied to the backoff per additional retry (1.0 = fixed).
    pub backoff_mult: f64,
    /// Jitter as a fraction of the backoff: the delay is scaled by
    /// `1 + jitter_frac * u` with `u ∈ [0,1)` from the session's RNG.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Never retry: failed interactions are abandoned (the client thinks and
    /// moves on). This is the default everywhere — zero RNG draws.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: SimTime::ZERO,
            backoff_mult: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// The retry-storm policy: immediately re-issue, no backoff, no jitter.
    pub fn naive(max_attempts: u8) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base: SimTime::ZERO,
            backoff_mult: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// Exponential backoff with jitter (the well-behaved client).
    pub fn backoff(max_attempts: u8, base: SimTime, mult: f64, jitter_frac: f64) -> Self {
        assert!(mult >= 1.0, "backoff multiplier must be >= 1");
        assert!(
            (0.0..=1.0).contains(&jitter_frac),
            "jitter fraction must be in [0,1]"
        );
        RetryPolicy {
            max_attempts,
            backoff_base: base,
            backoff_mult: mult,
            jitter_frac,
        }
    }

    /// Whether this policy can ever retry.
    pub fn is_disabled(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Delay before re-issuing attempt `attempt + 1`, given the 1-based
    /// number of the attempt that just failed and a jitter draw `u ∈ [0,1)`.
    /// `None` means the attempt budget is exhausted: abandon.
    pub fn delay(&self, attempt: u8, jitter01: f64) -> Option<SimTime> {
        if attempt >= self.max_attempts {
            return None;
        }
        let base = self.backoff_base.as_secs_f64();
        let scaled = base * self.backoff_mult.powi(attempt.saturating_sub(1) as i32);
        Some(SimTime::from_secs_f64(
            scaled * (1.0 + self.jitter_frac * jitter01),
        ))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

/// Canonical text form, round-tripping through the [`std::str::FromStr`]
/// parser:
/// `off`, `naive:N`, or `backoff:N:BASE_MS:MULT:JITTER`.
impl std::fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_disabled() {
            write!(f, "off")
        } else if self.backoff_base == SimTime::ZERO && self.jitter_frac == 0.0 {
            write!(f, "naive:{}", self.max_attempts)
        } else {
            write!(
                f,
                "backoff:{}:{}:{}:{}",
                self.max_attempts,
                self.backoff_base.as_secs_f64() * 1e3,
                self.backoff_mult,
                self.jitter_frac
            )
        }
    }
}

/// Parse `off`, `naive:N`, or `backoff:N:BASE_MS:MULT:JITTER` (base in
/// milliseconds) — the `--retry` CLI syntax.
impl std::str::FromStr for RetryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err =
            || format!("retry policy '{s}' must be off | naive:N | backoff:N:BASE_MS:MULT:JITTER");
        let s = s.trim();
        let mut parts = s.split(':');
        match parts
            .next()
            .map(|p| p.trim().to_ascii_lowercase())
            .as_deref()
        {
            Some("off") | Some("disabled") => {
                if parts.next().is_some() {
                    return Err(err());
                }
                Ok(RetryPolicy::disabled())
            }
            Some("naive") => {
                let n: u8 = parts
                    .next()
                    .ok_or_else(err)?
                    .trim()
                    .parse()
                    .map_err(|_| err())?;
                if n < 1 || parts.next().is_some() {
                    return Err(err());
                }
                Ok(RetryPolicy::naive(n))
            }
            Some("backoff") => {
                let mut num = || -> Result<f64, String> {
                    parts
                        .next()
                        .ok_or_else(err)?
                        .trim()
                        .parse()
                        .map_err(|_| err())
                };
                let n = num()?;
                let base_ms = num()?;
                let mult = num()?;
                let jitter = num()?;
                if parts.next().is_some()
                    || !(1.0..=255.0).contains(&n)
                    || n.fract() != 0.0
                    || base_ms.is_nan()
                    || base_ms < 0.0
                    || mult.is_nan()
                    || mult < 1.0
                    || !(0.0..=1.0).contains(&jitter)
                {
                    return Err(err());
                }
                Ok(RetryPolicy::backoff(
                    n as u8,
                    SimTime::from_secs_f64(base_ms / 1e3),
                    mult,
                    jitter,
                ))
            }
            _ => Err(err()),
        }
    }
}

/// Fleet-wide retry budget: a token bucket layered on top of
/// [`RetryPolicy`] that caps the *fraction* of traffic that may be retries.
/// Every completed attempt deposits `ratio` tokens (capped at `burst`);
/// each retry spends one token; a drained bucket denies the retry and the
/// client abandons the interaction instead. With `ratio = 0.1` at most
/// ~10% of steady-state traffic can be retries — a transient fault can no
/// longer amplify into a metastable retry storm.
///
/// Pure data with a disabled default (no bucket arithmetic at all), so
/// budget-free runs stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Tokens deposited per completed attempt (the steady-state retry
    /// fraction cap). Non-finite ⇒ the budget is disabled.
    pub ratio: f64,
    /// Bucket capacity: the retry burst tolerated after a quiet period.
    pub burst: f64,
}

impl RetryBudget {
    /// No budget: every retry the policy allows is issued. Default.
    pub fn disabled() -> Self {
        RetryBudget {
            ratio: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }

    /// Budget allowing a steady retry fraction of `ratio` with a burst
    /// allowance of `burst` tokens.
    pub fn new(ratio: f64, burst: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "retry budget ratio must be finite and >= 0"
        );
        assert!(
            burst.is_finite() && burst >= 1.0,
            "retry budget burst must be finite and >= 1"
        );
        RetryBudget { ratio, burst }
    }

    /// Whether the budget is a no-op.
    pub fn is_disabled(&self) -> bool {
        !self.ratio.is_finite()
    }

    /// Fresh runtime bucket, starting full (the burst allowance).
    pub fn bucket(&self) -> RetryBucket {
        RetryBucket {
            tokens: if self.is_disabled() { 0.0 } else { self.burst },
        }
    }
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget::disabled()
    }
}

/// Canonical text form: `off` or `RATIO[:BURST]`.
impl std::fmt::Display for RetryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_disabled() {
            write!(f, "off")
        } else {
            write!(f, "{}:{}", self.ratio, self.burst)
        }
    }
}

/// Parse `off` or `RATIO[:BURST]` (burst defaults to 10).
impl std::str::FromStr for RetryBudget {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("retry budget '{s}' must be off | RATIO[:BURST]");
        let s = s.trim();
        if s.eq_ignore_ascii_case("off") || s.eq_ignore_ascii_case("disabled") {
            return Ok(RetryBudget::disabled());
        }
        let (ratio_s, burst_s) = match s.split_once(':') {
            Some((r, b)) => (r, Some(b)),
            None => (s, None),
        };
        let ratio: f64 = ratio_s.trim().parse().map_err(|_| err())?;
        let burst: f64 = match burst_s {
            Some(b) => b.trim().parse().map_err(|_| err())?,
            None => 10.0,
        };
        if !(ratio.is_finite() && ratio >= 0.0 && burst.is_finite() && burst >= 1.0) {
            return Err(err());
        }
        Ok(RetryBudget::new(ratio, burst))
    }
}

/// Runtime token bucket for one run's [`RetryBudget`].
#[derive(Debug, Clone, Copy)]
pub struct RetryBucket {
    tokens: f64,
}

impl RetryBucket {
    /// Deposit for one completed attempt.
    pub fn deposit(&mut self, budget: &RetryBudget) {
        self.tokens = (self.tokens + budget.ratio).min(budget.burst);
    }

    /// Try to spend one token for a retry. `false` ⇒ the budget denies it.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(p.is_disabled());
        assert_eq!(p.delay(1, 0.5), None);
    }

    #[test]
    fn naive_retries_immediately_up_to_budget() {
        let p = RetryPolicy::naive(3);
        assert_eq!(p.delay(1, 0.9), Some(SimTime::ZERO));
        assert_eq!(p.delay(2, 0.9), Some(SimTime::ZERO));
        assert_eq!(p.delay(3, 0.9), None);
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter() {
        let p = RetryPolicy::backoff(4, SimTime::from_millis(100), 2.0, 0.5);
        let d1 = p.delay(1, 0.0).unwrap().as_secs_f64();
        let d2 = p.delay(2, 0.0).unwrap().as_secs_f64();
        let d3 = p.delay(3, 1.0).unwrap().as_secs_f64();
        assert!((d1 - 0.1).abs() < 1e-9);
        assert!((d2 - 0.2).abs() < 1e-9);
        // attempt 3: 100ms * 2^2 = 400ms, jitter ×1.5 = 600ms.
        assert!((d3 - 0.6).abs() < 1e-9);
        assert_eq!(p.delay(4, 0.0), None);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn shrinking_backoff_rejected() {
        let _ = RetryPolicy::backoff(3, SimTime::from_millis(10), 0.5, 0.0);
    }

    #[test]
    fn retry_policy_round_trips_through_text() {
        for p in [
            RetryPolicy::disabled(),
            RetryPolicy::naive(3),
            RetryPolicy::backoff(4, SimTime::from_millis(200), 2.0, 0.5),
        ] {
            let s = p.to_string();
            let back: RetryPolicy = s.parse().expect("round trip");
            assert_eq!(back, p, "{s}");
        }
        assert_eq!("off".parse::<RetryPolicy>(), Ok(RetryPolicy::disabled()));
        assert_eq!("naive:2".parse::<RetryPolicy>(), Ok(RetryPolicy::naive(2)));
        let p: RetryPolicy = "backoff:3:100:2:0.25".parse().expect("parses");
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff_base, SimTime::from_millis(100));
        assert!(
            "naive:0".parse::<RetryPolicy>().is_err(),
            "zero attempts rejected"
        );
        assert!("naive".parse::<RetryPolicy>().is_err());
        assert!("backoff:3:100:0.5:0".parse::<RetryPolicy>().is_err());
        assert!("backoff:3:100:2:1.5".parse::<RetryPolicy>().is_err());
        assert!("frobnicate".parse::<RetryPolicy>().is_err());
    }

    #[test]
    fn retry_budget_round_trips_and_validates() {
        assert!(RetryBudget::default().is_disabled());
        assert_eq!("off".parse::<RetryBudget>(), Ok(RetryBudget::disabled()));
        let b: RetryBudget = "0.1:20".parse().expect("parses");
        assert_eq!(b, RetryBudget::new(0.1, 20.0));
        assert_eq!(b.to_string().parse::<RetryBudget>(), Ok(b));
        let b: RetryBudget = "0.2".parse().expect("parses");
        assert_eq!(b.burst, 10.0);
        assert!("-1".parse::<RetryBudget>().is_err());
        assert!("0.1:0.5".parse::<RetryBudget>().is_err());
        assert!("inf".parse::<RetryBudget>().is_err());
    }

    #[test]
    fn retry_bucket_caps_the_retry_fraction() {
        let budget = RetryBudget::new(0.5, 2.0);
        let mut bucket = budget.bucket();
        // Starts full at the burst allowance.
        assert!(bucket.try_spend());
        assert!(bucket.try_spend());
        assert!(!bucket.try_spend(), "burst exhausted");
        // Two deposits buy one retry at ratio 0.5.
        bucket.deposit(&budget);
        assert!(!bucket.try_spend());
        bucket.deposit(&budget);
        assert!(bucket.try_spend());
        // Deposits cap at the burst.
        for _ in 0..100 {
            bucket.deposit(&budget);
        }
        assert!(bucket.tokens() <= 2.0);
    }
}
