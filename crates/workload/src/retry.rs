//! Client-side retry policy: max attempts, exponential backoff, and
//! deterministic jitter.
//!
//! A closed-loop client that receives an error page (timeout, shed, backend
//! failure) either *abandons* the interaction and goes back to thinking, or
//! *retries* the same interaction after a backoff delay. The policy is pure
//! data: the jitter draw comes from the session's own RNG stream (see
//! [`crate::Session::retry_jitter`]) so runs stay bit-deterministic and —
//! crucially — policies that never retry draw nothing.

use simcore::SimTime;

/// Client retry policy applied to failed interactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per interaction, including the first
    /// (1 = never retry).
    pub max_attempts: u8,
    /// Backoff before the first retry.
    pub backoff_base: SimTime,
    /// Multiplier applied to the backoff per additional retry (1.0 = fixed).
    pub backoff_mult: f64,
    /// Jitter as a fraction of the backoff: the delay is scaled by
    /// `1 + jitter_frac * u` with `u ∈ [0,1)` from the session's RNG.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Never retry: failed interactions are abandoned (the client thinks and
    /// moves on). This is the default everywhere — zero RNG draws.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: SimTime::ZERO,
            backoff_mult: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// The retry-storm policy: immediately re-issue, no backoff, no jitter.
    pub fn naive(max_attempts: u8) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base: SimTime::ZERO,
            backoff_mult: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// Exponential backoff with jitter (the well-behaved client).
    pub fn backoff(max_attempts: u8, base: SimTime, mult: f64, jitter_frac: f64) -> Self {
        assert!(mult >= 1.0, "backoff multiplier must be >= 1");
        assert!(
            (0.0..=1.0).contains(&jitter_frac),
            "jitter fraction must be in [0,1]"
        );
        RetryPolicy {
            max_attempts,
            backoff_base: base,
            backoff_mult: mult,
            jitter_frac,
        }
    }

    /// Whether this policy can ever retry.
    pub fn is_disabled(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Delay before re-issuing attempt `attempt + 1`, given the 1-based
    /// number of the attempt that just failed and a jitter draw `u ∈ [0,1)`.
    /// `None` means the attempt budget is exhausted: abandon.
    pub fn delay(&self, attempt: u8, jitter01: f64) -> Option<SimTime> {
        if attempt >= self.max_attempts {
            return None;
        }
        let base = self.backoff_base.as_secs_f64();
        let scaled = base * self.backoff_mult.powi(attempt.saturating_sub(1) as i32);
        Some(SimTime::from_secs_f64(
            scaled * (1.0 + self.jitter_frac * jitter01),
        ))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(p.is_disabled());
        assert_eq!(p.delay(1, 0.5), None);
    }

    #[test]
    fn naive_retries_immediately_up_to_budget() {
        let p = RetryPolicy::naive(3);
        assert_eq!(p.delay(1, 0.9), Some(SimTime::ZERO));
        assert_eq!(p.delay(2, 0.9), Some(SimTime::ZERO));
        assert_eq!(p.delay(3, 0.9), None);
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter() {
        let p = RetryPolicy::backoff(4, SimTime::from_millis(100), 2.0, 0.5);
        let d1 = p.delay(1, 0.0).unwrap().as_secs_f64();
        let d2 = p.delay(2, 0.0).unwrap().as_secs_f64();
        let d3 = p.delay(3, 1.0).unwrap().as_secs_f64();
        assert!((d1 - 0.1).abs() < 1e-9);
        assert!((d2 - 0.2).abs() < 1e-9);
        // attempt 3: 100ms * 2^2 = 400ms, jitter ×1.5 = 600ms.
        assert!((d3 - 0.6).abs() < 1e-9);
        assert_eq!(p.delay(4, 0.0), None);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn shrinking_backoff_rejected() {
        let _ = RetryPolicy::backoff(3, SimTime::from_millis(10), 0.5, 0.0);
    }
}
