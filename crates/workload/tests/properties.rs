//! Randomized tests of the workload model.

use simcore::testkit::check;
use simcore::{RunRng, SimTime};
use workload::{InteractionCatalog, Mix, Session, SessionModel};

/// Sessions only ever draw interactions inside the mix's support, under
/// both session models and any seed.
#[test]
fn sessions_respect_mix_support() {
    check(32, |g| {
        let seed = g.u64_in(0, 10_000);
        let markov = g.chance(0.5);
        let catalog = InteractionCatalog::rubbos();
        let mix = Mix::browse_only(&catalog);
        let model = if markov {
            SessionModel::Markov
        } else {
            SessionModel::Iid
        };
        let root = RunRng::new(seed);
        let mut s = Session::new(0, &root, model, SimTime::from_secs(7));
        for _ in 0..500 {
            let id = s.next_interaction(&catalog, &mix);
            assert!(
                mix.weights()[id] > 0.0,
                "drew zero-weight {}",
                catalog.get(id).name
            );
        }
    });
}

/// Think times are positive with roughly the configured mean.
#[test]
fn think_times_positive_and_calibrated() {
    check(24, |g| {
        let seed = g.u64_in(0, 1_000);
        let mean_s = g.u64_in(1, 20);
        let catalog = InteractionCatalog::rubbos();
        let _ = &catalog;
        let root = RunRng::new(seed);
        let mut s = Session::new(0, &root, SessionModel::Iid, SimTime::from_secs(mean_s));
        let n = 3000;
        let total: f64 = (0..n).map(|_| s.think_time().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!(mean > 0.0);
        assert!(
            (mean - mean_s as f64).abs() / (mean_s as f64) < 0.15,
            "mean {mean} vs configured {mean_s} (seed {})",
            g.seed()
        );
    });
}

/// Req_ratio is a convex combination of the per-interaction query counts
/// for any positive weighting.
#[test]
fn req_ratio_is_convex_combination() {
    check(64, |g| {
        let weights = g.vec_f64(0.0, 10.0, 24, 25);
        if weights.iter().sum::<f64>() <= 0.0 {
            return;
        }
        let catalog = InteractionCatalog::rubbos();
        let rr = catalog.req_ratio(&weights);
        let min = catalog
            .all()
            .iter()
            .map(|i| i.queries as f64)
            .fold(f64::INFINITY, f64::min);
        let max = catalog
            .all()
            .iter()
            .map(|i| i.queries as f64)
            .fold(0.0f64, f64::max);
        assert!(rr >= min - 1e-12 && rr <= max + 1e-12, "rr={rr}");
    });
}

/// Two sessions with the same id and seed replay identically regardless
/// of when they are created (no hidden global state).
#[test]
fn session_replay_is_pure() {
    check(32, |g| {
        let seed = g.u64_in(0, 10_000);
        let id = g.u64_in(0, 1_000) as u32;
        let catalog = InteractionCatalog::rubbos();
        let mix = Mix::read_write(&catalog);
        let mk = || {
            let root = RunRng::new(seed);
            Session::new(id, &root, SessionModel::Markov, SimTime::from_secs(7))
        };
        let mut a = mk();
        // Interleave unrelated RNG work to prove isolation.
        let mut noise = RunRng::new(seed ^ 0xabc);
        let _ = noise.uniform01();
        let mut b = mk();
        for _ in 0..64 {
            assert_eq!(
                a.next_interaction(&catalog, &mix),
                b.next_interaction(&catalog, &mix)
            );
            assert_eq!(a.think_time(), b.think_time());
        }
    });
}
