//! Property tests of the simulation substrate: the engine's ordering
//! guarantees and the statistics accumulators' invariants. Each test sweeps a
//! fixed set of deterministic seeded cases (see `simcore::testkit`).

use simcore::stats::{Histogram, IntervalSeries, LogHistogram, TimeWeighted, Welford};
use simcore::testkit::check;
use simcore::{Engine, EventQueue, Model, SimTime};

struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _q: &mut EventQueue<u32>) {
        self.seen.push((now.as_micros(), ev));
    }
}

/// The engine delivers every event exactly once, in non-decreasing time
/// order, with FIFO order at equal timestamps.
#[test]
fn engine_delivery_order() {
    check(64, |g| {
        let events = g.vec_u64(0, 1_000, 1, 200);
        let mut e = Engine::new(Recorder { seen: Vec::new() });
        for (i, &at) in events.iter().enumerate() {
            e.schedule(SimTime::from_micros(at), i as u32);
        }
        e.run_until(SimTime::MAX);
        let seen = &e.model().seen;
        assert_eq!(seen.len(), events.len());
        // Times non-decreasing.
        assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO at equal timestamps: ids ascend within equal-time runs.
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
        // Every event delivered at its scheduled time.
        for &(at, id) in seen {
            assert_eq!(at, events[id as usize], "seed {}", g.seed());
        }
    });
}

/// Welford matches the naive two-pass computation.
#[test]
fn welford_matches_two_pass() {
    check(64, |g| {
        let xs = g.vec_f64(-1e6, 1e6, 2, 200);
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((w.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        assert!((w.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
        assert_eq!(w.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(w.min(), Some(min));
    });
}

/// Merging split Welford halves equals the whole.
#[test]
fn welford_merge_associativity() {
    check(64, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 2, 100);
        let split = g.usize_in(1, 99).min(xs.len() - 1);
        let mut whole = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            if i < split {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    });
}

/// Histogram conserves observations across bins + under/overflow.
#[test]
fn histogram_conserves_counts() {
    check(64, |g| {
        let xs = g.vec_f64(-10.0, 10.0, 0, 300);
        let mut h = Histogram::with_edges(&[0.0, 1.0, 2.0, 5.0]);
        for &x in &xs {
            h.add(x);
        }
        assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.overflow() + h.underflow(), xs.len() as u64);
    });
}

/// LogHistogram quantiles are monotone and bracket the data.
#[test]
fn log_histogram_quantiles_monotone() {
    check(64, |g| {
        let xs = g.vec_f64(1e-4, 1e3, 1, 300);
        let mut h = LogHistogram::response_times();
        for &x in &xs {
            h.add(x);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{qs:?}");
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        // p99 cannot exceed the max by more than one bucket width (2%).
        assert!(qs[3] <= max * 1.03 + 1e-4, "p99 {} max {}", qs[3], max);
    });
}

/// fraction_le is a monotone CDF reaching 1.
#[test]
fn log_histogram_cdf() {
    check(64, |g| {
        let xs = g.vec_f64(1e-3, 1e2, 1, 200);
        let mut h = LogHistogram::response_times();
        for &x in &xs {
            h.add(x);
        }
        let mut prev = 0.0;
        for t in [0.001, 0.01, 0.1, 1.0, 10.0, 1e4] {
            let f = h.fraction_le(t);
            assert!(f >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert!((h.fraction_le(1e9) - 1.0).abs() < 1e-12);
    });
}

/// TimeWeighted average is always between the min and max level set.
#[test]
fn time_weighted_average_bounded() {
    check(64, |g| {
        let n = g.usize_in(1, 50);
        let segments: Vec<(u64, f64)> = (0..n)
            .map(|_| (g.u64_in(1, 1_000), g.f64_in(0.0, 10.0)))
            .collect();
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = SimTime::ZERO;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &(dt, v) in &segments {
            t += SimTime::from_millis(dt);
            tw.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = tw.average_until(t + SimTime::from_secs(1));
        assert!(
            avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg={avg} lo={lo} hi={hi}"
        );
        assert!(tw.peak() >= hi);
    });
}

/// IntervalSeries conserves the total amount added after the origin.
#[test]
fn interval_series_conserves() {
    check(64, |g| {
        let n = g.usize_in(0, 200);
        let adds: Vec<(u64, f64)> = (0..n)
            .map(|_| (g.u64_in(0, 100_000), g.f64_in(0.0, 5.0)))
            .collect();
        let origin = SimTime::from_millis(10_000);
        let mut s = IntervalSeries::new(origin, SimTime::from_secs(1));
        let mut expected = 0.0;
        for &(at_ms, amt) in &adds {
            let t = SimTime::from_millis(at_ms);
            s.add(t, amt);
            if t >= origin {
                expected += amt;
            }
        }
        let total: f64 = s.buckets().iter().sum();
        assert!((total - expected).abs() < 1e-9);
    });
}
