//! Property tests of the simulation substrate: the engine's ordering
//! guarantees and the statistics accumulators' invariants.

use proptest::prelude::*;
use simcore::stats::{Histogram, IntervalSeries, LogHistogram, TimeWeighted, Welford};
use simcore::{Engine, EventQueue, Model, SimTime};

struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _q: &mut EventQueue<u32>) {
        self.seen.push((now.as_micros(), ev));
    }
}

proptest! {
    /// The engine delivers every event exactly once, in non-decreasing time
    /// order, with FIFO order at equal timestamps.
    #[test]
    fn engine_delivery_order(events in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut e = Engine::new(Recorder { seen: Vec::new() });
        for (i, &at) in events.iter().enumerate() {
            e.schedule(SimTime::from_micros(at), i as u32);
        }
        e.run_until(SimTime::MAX);
        let seen = &e.model().seen;
        prop_assert_eq!(seen.len(), events.len());
        // Times non-decreasing.
        prop_assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO at equal timestamps: ids ascend within equal-time runs.
        prop_assert!(seen
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
        // Every event delivered at its scheduled time.
        for &(at, id) in seen {
            prop_assert_eq!(at, events[id as usize]);
        }
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(w.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(w.min(), Some(min));
    }

    /// Merging split Welford halves equals the whole.
    #[test]
    fn welford_merge_associativity(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 1usize..99,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            if i < split { a.add(x) } else { b.add(x) }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Histogram conserves observations across bins + under/overflow.
    #[test]
    fn histogram_conserves_counts(xs in prop::collection::vec(-10.0f64..10.0, 0..300)) {
        let mut h = Histogram::with_edges(&[0.0, 1.0, 2.0, 5.0]);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.overflow() + h.underflow(), xs.len() as u64);
    }

    /// LogHistogram quantiles are monotone and bracket the data.
    #[test]
    fn log_histogram_quantiles_monotone(xs in prop::collection::vec(1e-4f64..1e3, 1..300)) {
        let mut h = LogHistogram::response_times();
        for &x in &xs {
            h.add(x);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{qs:?}");
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        // p99 cannot exceed the max by more than one bucket width (2%).
        prop_assert!(qs[3] <= max * 1.03 + 1e-4, "p99 {} max {}", qs[3], max);
    }

    /// fraction_le is a monotone CDF reaching 1.
    #[test]
    fn log_histogram_cdf(xs in prop::collection::vec(1e-3f64..1e2, 1..200)) {
        let mut h = LogHistogram::response_times();
        for &x in &xs {
            h.add(x);
        }
        let mut prev = 0.0;
        for t in [0.001, 0.01, 0.1, 1.0, 10.0, 1e4] {
            let f = h.fraction_le(t);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert!((h.fraction_le(1e9) - 1.0).abs() < 1e-12);
    }

    /// TimeWeighted average is always between the min and max level set.
    #[test]
    fn time_weighted_average_bounded(
        segments in prop::collection::vec((1u64..1_000, 0.0f64..10.0), 1..50),
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = SimTime::ZERO;
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &(dt, v) in &segments {
            t += SimTime::from_millis(dt);
            tw.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = tw.average_until(t + SimTime::from_secs(1));
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg={avg} lo={lo} hi={hi}");
        prop_assert!(tw.peak() >= hi);
    }

    /// IntervalSeries conserves the total amount added after the origin.
    #[test]
    fn interval_series_conserves(adds in prop::collection::vec((0u64..100_000, 0.0f64..5.0), 0..200)) {
        let origin = SimTime::from_millis(10_000);
        let mut s = IntervalSeries::new(origin, SimTime::from_secs(1));
        let mut expected = 0.0;
        for &(at_ms, amt) in &adds {
            let t = SimTime::from_millis(at_ms);
            s.add(t, amt);
            if t >= origin {
                expected += amt;
            }
        }
        let total: f64 = s.buckets().iter().sum();
        prop_assert!((total - expected).abs() < 1e-9);
    }
}
