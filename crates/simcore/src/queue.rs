//! Pluggable future-event-list backends and the staged-arrivals lane.
//!
//! The engine's pending-event set is a strict total order on `(time,
//! insertion-seq)`: earlier times first, FIFO among events scheduled for the
//! same instant. *Which data structure maintains that order is a pure
//! performance choice* — every backend must pop the exact same sequence, so
//! swapping backends can never change simulation output. That invariant is
//! what lets the backend be selected per run (`--queue heap|calendar`)
//! without invalidating golden digests or content-addressed artifact stores.
//!
//! Two backends ship today:
//!
//! * [`HeapBackend`] — the classic binary heap: `O(log n)` push/pop,
//!   excellent constants, no tuning. The default.
//! * [`CalendarBackend`] — a calendar queue (Brown 1988): events hash into
//!   time buckets ("days") of width `2^shift` µs; pops scan forward from the
//!   current day. Push and pop are amortized `O(1)` when the bucket width
//!   tracks the event-time spread, which the backend re-tunes on resize.
//!
//! # Adding a backend
//!
//! Implement [`EventQueueBackend`] for the new structure, add a variant to
//! [`QueueKind`] and to the private dispatch enum inside [`EventQueue`], and
//! extend the differential property tests in this module (and
//! `tests/queue_backends.rs` at the workspace root) so the new backend is
//! proven against the heap on randomized schedules, ties included. Dispatch
//! is a two-armed `match` on a concrete enum rather than `dyn` — the pop/push
//! pair runs hundreds of millions of times per run, and a vtable call per
//! event is measurable where a predictable branch is not.
//!
//! # The staged-arrivals lane
//!
//! Closed-loop runs seed one arrival event per session before the run starts
//! — at 1M users that is a million heap pushes (and a million live heap
//! slots) before the first event fires. [`EventQueue::stage`] instead
//! appends pre-run events to a plain vector with their insertion seq
//! reserved as usual; the vector is sorted once by `(time, seq)` on the
//! first pop and merged lazily with the backend at pop time (pop = min of
//! the two fronts). Because the merge respects the same total order and the
//! seqs are the ones the events would have had anyway, the pop sequence —
//! and therefore every digest — is bit-identical to pushing everything up
//! front, while the backend only ever holds the steady-state working set.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::str::FromStr;

/// Which future-event-list backend an engine run uses.
///
/// Purely an execution/performance knob: both backends produce bit-identical
/// pop order (proven by differential tests and per-backend golden digests),
/// so this deliberately does **not** participate in experiment content
/// addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary-heap future event list: `O(log n)`, no tuning.
    Heap,
    /// Calendar queue: bucketed by time, amortized `O(1)` push/pop when
    /// bucket width matches the event-time spread (self-tuned on resize).
    /// The default: measured fastest at every point of the perf suite,
    /// from 0.4M-event table runs to the 1M-session stress point (see
    /// `DESIGN.md` §12 for the crossover measurement).
    #[default]
    Calendar,
}

impl QueueKind {
    /// All backends, for "run the suite once per backend" loops.
    pub const ALL: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];
}

impl FromStr for QueueKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" => Ok(QueueKind::Heap),
            "calendar" => Ok(QueueKind::Calendar),
            other => Err(format!(
                "unknown queue backend '{other}' (expected 'heap' or 'calendar')"
            )),
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueKind::Heap => write!(f, "heap"),
            QueueKind::Calendar => write!(f, "calendar"),
        }
    }
}

/// One pending event: the payload plus its total-order key `(at, seq)`.
///
/// `seq` is the queue-wide insertion sequence; it breaks same-time ties so
/// delivery at one instant is FIFO in scheduling order.
#[derive(Debug)]
pub struct Scheduled<E> {
    /// Absolute delivery time.
    pub at: SimTime,
    /// Queue-wide insertion sequence (same-time tie-break).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> Scheduled<E> {
    /// The total-order key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    /// Natural ascending order on `(at, seq)` — earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// A future-event-list backend: maintains pending [`Scheduled`] events and
/// yields them in strictly ascending `(at, seq)` order.
///
/// The contract every implementation must honor (and the differential tests
/// enforce): `pop_min` returns the pending event with the smallest key;
/// `min_key`/`peek_min` report that key without removing it. Internal layout
/// (heap shape, bucket widths, resize timing) must never influence the pop
/// order, only its cost.
pub trait EventQueueBackend<E> {
    /// Insert one pending event.
    fn push(&mut self, item: Scheduled<E>);
    /// Key of the minimum pending event; may memoize the located position so
    /// an immediately following [`pop_min`](Self::pop_min) is `O(1)`.
    fn min_key(&mut self) -> Option<(SimTime, u64)>;
    /// Key of the minimum pending event without any memoization (`&self`).
    fn peek_min(&self) -> Option<(SimTime, u64)>;
    /// Remove and return the minimum pending event.
    fn pop_min(&mut self) -> Option<Scheduled<E>>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Allocated capacity (best effort; for telemetry).
    fn capacity(&self) -> usize;
    /// Pre-size for at least `additional` more events (may be a no-op for
    /// backends that size themselves).
    fn reserve(&mut self, additional: usize);
}

/// Binary-heap backend: `std::collections::BinaryHeap` over
/// [`Reverse`](std::cmp::Reverse)d entries so the max-heap pops the minimum.
#[derive(Debug)]
pub struct HeapBackend<E> {
    heap: BinaryHeap<std::cmp::Reverse<Scheduled<E>>>,
}

impl<E> HeapBackend<E> {
    /// Create with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapBackend {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }
}

impl<E> EventQueueBackend<E> for HeapBackend<E> {
    #[inline]
    fn push(&mut self, item: Scheduled<E>) {
        self.heap.push(std::cmp::Reverse(item));
    }
    #[inline]
    fn min_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|r| r.0.key())
    }
    #[inline]
    fn peek_min(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|r| r.0.key())
    }
    #[inline]
    fn pop_min(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|r| r.0)
    }
    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
    fn capacity(&self) -> usize {
        self.heap.capacity()
    }
    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }
}

/// Smallest bucket-array size the calendar queue will shrink to.
const MIN_BUCKETS: usize = 64;
/// Largest bucket-array size (bounds the empty-bucket memory overhead; past
/// this the queue degrades gracefully to a few events per bucket).
const MAX_BUCKETS: usize = 1 << 19;
/// Initial bucket width exponent: `2^12` µs ≈ 4 ms days, a reasonable prior
/// for millisecond-scale service times; resize re-tunes it from the actual
/// pending-event spread.
const DEFAULT_SHIFT: u32 = 12;
/// Bucket-width exponent ceiling (`2^40` µs ≈ 13 days of sim time per
/// bucket — effectively "one bucket for everything").
const MAX_SHIFT: u32 = 40;

/// Calendar-queue backend (Brown 1988).
///
/// Events hash into `buckets.len()` (a power of two) time buckets by their
/// "day" `at_µs >> shift`; each bucket is kept sorted ascending by
/// `(at, seq)`, so a bucket's front is its minimum. A pop scans days forward
/// from the last popped day (`cur_day`); within one "year" (`nbuckets` days)
/// each day maps to a distinct bucket, so the first front whose day matches
/// the scanned day is the global minimum. If a whole year is empty the pop
/// falls back to a direct min-scan over bucket fronts and jumps `cur_day`
/// there.
///
/// Determinism: pop order is decided *only* by `(at, seq)` comparisons —
/// bucket count, width, and resize timing affect where events sit, never
/// which one is the minimum — so the calendar queue pops the exact sequence
/// the heap does. (The invariant that makes the day-scan sound: every
/// pending event's day is ≥ `cur_day`, because the engine never schedules
/// before `now` and `cur_day` only tracks popped minima.)
#[derive(Debug)]
pub struct CalendarBackend<E> {
    buckets: Vec<VecDeque<Scheduled<E>>>,
    /// `buckets.len() - 1`; bucket index = `day & mask`.
    mask: u64,
    /// Bucket width is `2^shift` microseconds.
    shift: u32,
    /// Day of the most recently popped event (lower bound on all pending days).
    cur_day: u64,
    len: usize,
    /// Memoized location of the current minimum: `(bucket, at, seq)`. Kept
    /// valid across pushes (a push either beats it and replaces it, or
    /// cannot be the minimum); consumed by `pop_min`.
    cached_min: Option<(usize, SimTime, u64)>,
}

impl<E> CalendarBackend<E> {
    /// Create sized for roughly `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        let nbuckets = capacity.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        CalendarBackend {
            buckets: (0..nbuckets).map(|_| VecDeque::new()).collect(),
            mask: (nbuckets - 1) as u64,
            shift: DEFAULT_SHIFT,
            cur_day: 0,
            len: 0,
            cached_min: None,
        }
    }

    #[inline]
    fn day_of(&self, at: SimTime) -> u64 {
        at.as_micros() >> self.shift
    }

    /// Insert without resize checks or cache maintenance (rebuild path).
    fn insert_item(&mut self, item: Scheduled<E>) {
        let bucket = (self.day_of(item.at) & self.mask) as usize;
        let key = item.key();
        let deque = &mut self.buckets[bucket];
        // Sorted-ascending insert. Same-time events arrive with monotone
        // seq, so the common case is an append at the back, O(1).
        let pos = deque.partition_point(|s| s.key() < key);
        deque.insert(pos, item);
        self.len += 1;
    }

    /// Locate the minimum event: `(bucket, at, seq)`.
    fn locate_min(&self) -> (usize, SimTime, u64) {
        debug_assert!(self.len > 0, "locate_min on empty calendar");
        let nbuckets = self.buckets.len() as u64;
        for day in self.cur_day..self.cur_day + nbuckets {
            let bucket = (day & self.mask) as usize;
            if let Some(front) = self.buckets[bucket].front() {
                if self.day_of(front.at) == day {
                    return (bucket, front.at, front.seq);
                }
            }
        }
        // Sparse year: nothing within `nbuckets` days of cur_day. Direct
        // min-scan over bucket fronts (each front is its bucket's minimum).
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, d)| d.front().map(|f| (b, f.at, f.seq)))
            .min_by_key(|&(_, at, seq)| (at, seq))
            .expect("len > 0 but all buckets empty")
    }

    /// Rebuild with a new bucket count, re-tuning the bucket width to the
    /// pending-event spread (aiming for ~1 event per bucket-day). Layout
    /// changes only; pop order is unaffected by construction.
    fn rebuild(&mut self, target_buckets: usize) {
        let nbuckets = target_buckets
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let items: Vec<Scheduled<E>> = self.buckets.iter_mut().flat_map(|b| b.drain(..)).collect();
        let old_shift = self.shift;
        if let (Some(lo), Some(hi)) = (
            items.iter().map(|s| s.at).min(),
            items.iter().map(|s| s.at).max(),
        ) {
            let span = hi.as_micros() - lo.as_micros();
            let per_event = (span / items.len() as u64).max(1);
            self.shift = (63 - per_event.leading_zeros()).min(MAX_SHIFT);
        }
        // `cur_day` must stay a lower bound on every FUTURE push, not just
        // the currently pending events: pushes land anywhere ≥ now, and now
        // can be far below the minimum pending event (e.g. when only
        // far-future markers remain while arrivals stream in from the
        // staged lane). Jumping to the minimum pending day would start the
        // pop scan past those later pushes and break pop order — so carry
        // the old bound across the width change instead. Scanning extra
        // empty days is at worst one sparse-year fallback, and the next pop
        // re-anchors `cur_day`.
        self.cur_day = (self.cur_day << old_shift) >> self.shift;
        self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        self.mask = (nbuckets - 1) as u64;
        self.cached_min = None;
        self.len = 0;
        for item in items {
            self.insert_item(item);
        }
    }
}

impl<E> EventQueueBackend<E> for CalendarBackend<E> {
    fn push(&mut self, item: Scheduled<E>) {
        if self.len + 1 > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.len + 1);
        }
        let key = item.key();
        let bucket = (self.day_of(item.at) & self.mask) as usize;
        if let Some((_, at, seq)) = self.cached_min {
            if key < (at, seq) {
                self.cached_min = Some((bucket, item.at, item.seq));
            }
        }
        let deque = &mut self.buckets[bucket];
        let pos = deque.partition_point(|s| s.key() < key);
        deque.insert(pos, item);
        self.len += 1;
    }

    fn min_key(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some((_, at, seq)) = self.cached_min {
            return Some((at, seq));
        }
        let found = self.locate_min();
        self.cached_min = Some(found);
        Some((found.1, found.2))
    }

    fn peek_min(&self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some((_, at, seq)) = self.cached_min {
            return Some((at, seq));
        }
        let (_, at, seq) = self.locate_min();
        Some((at, seq))
    }

    fn pop_min(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        let (bucket, at, _) = match self.cached_min.take() {
            Some(found) => found,
            None => self.locate_min(),
        };
        let item = self.buckets[bucket]
            .pop_front()
            .expect("minimum bucket empty");
        debug_assert_eq!(item.at, at, "cached minimum out of date");
        self.len -= 1;
        self.cur_day = self.day_of(at);
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.len.max(MIN_BUCKETS));
        }
        Some(item)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.buckets.iter().map(|b| b.capacity()).sum::<usize>()
    }

    fn reserve(&mut self, _additional: usize) {
        // The bucket array resizes itself from occupancy; per-bucket
        // reservations would only pin memory without helping pop cost.
    }
}

/// Backend dispatch. A concrete enum instead of `dyn EventQueueBackend` so
/// the per-event push/pop stays a predictable branch, not a vtable call.
#[derive(Debug)]
pub(crate) enum BackendImpl<E> {
    Heap(HeapBackend<E>),
    Calendar(CalendarBackend<E>),
}

macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            BackendImpl::Heap($b) => $body,
            BackendImpl::Calendar($b) => $body,
        }
    };
}

impl<E> EventQueueBackend<E> for BackendImpl<E> {
    #[inline]
    fn push(&mut self, item: Scheduled<E>) {
        dispatch!(self, b => b.push(item))
    }
    #[inline]
    fn min_key(&mut self) -> Option<(SimTime, u64)> {
        dispatch!(self, b => b.min_key())
    }
    #[inline]
    fn peek_min(&self) -> Option<(SimTime, u64)> {
        dispatch!(self, b => b.peek_min())
    }
    #[inline]
    fn pop_min(&mut self) -> Option<Scheduled<E>> {
        dispatch!(self, b => b.pop_min())
    }
    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, b => b.len())
    }
    fn capacity(&self) -> usize {
        dispatch!(self, b => b.capacity())
    }
    fn reserve(&mut self, additional: usize) {
        dispatch!(self, b => b.reserve(additional))
    }
}

impl<E> BackendImpl<E> {
    pub(crate) fn new(kind: QueueKind, capacity: usize) -> Self {
        match kind {
            QueueKind::Heap => BackendImpl::Heap(HeapBackend::with_capacity(capacity)),
            QueueKind::Calendar => BackendImpl::Calendar(CalendarBackend::with_capacity(capacity)),
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            BackendImpl::Heap(_) => QueueKind::Heap,
            BackendImpl::Calendar(_) => QueueKind::Calendar,
        }
    }
}

/// Phase timing samples one push in this many when profiling (see the
/// matching event-cycle sample in the engine): reading a monotonic clock
/// several times per event costs more than dispatching most events, so
/// timing every cycle would roughly double the event loop's cost. The
/// sample is keyed on event/schedule indices — no randomness — so profiling
/// stays bit-identical and repeatable.
pub(crate) const PROFILE_SAMPLE_MASK: u64 = 63;

/// Outcome of one [`EventQueue::pop_at_most`] attempt.
pub(crate) enum PopNext<E> {
    /// Nothing pending anywhere (backend and staged lane both empty).
    Empty,
    /// The earliest pending event lies beyond the horizon.
    Beyond,
    /// The popped minimum; the queue clock has advanced to its time.
    Event(Scheduled<E>),
}

/// The pending-event set, exposed to models for scheduling.
///
/// Internally a pluggable [`EventQueueBackend`] (selected by [`QueueKind`])
/// plus the staged-arrivals lane (see module docs); externally the same
/// strict `(time, insertion-seq)` total order regardless of backend.
pub struct EventQueue<E> {
    backend: BackendImpl<E>,
    /// Pre-run staged events; sorted *descending* by key on first pop so the
    /// current front is `last()` and consuming it is a by-value `pop()`.
    staged: Vec<Scheduled<E>>,
    staged_sorted: bool,
    /// Set on the first pop; staging afterwards is a contract violation.
    started: bool,
    now: SimTime,
    seq: u64,
    high_water: usize,
    timed: bool,
    sched_secs: f64,
    timed_pushes: u64,
}

impl<E> EventQueue<E> {
    /// Create a queue with the given backend, pre-sized for `capacity`
    /// pending events.
    pub fn new_with(kind: QueueKind, capacity: usize) -> Self {
        EventQueue {
            backend: BackendImpl::new(kind, capacity),
            staged: Vec::new(),
            staged_sorted: true,
            started: false,
            now: SimTime::ZERO,
            seq: 0,
            high_water: 0,
            timed: false,
            sched_secs: 0.0,
            timed_pushes: 0,
        }
    }

    /// Which backend this queue runs on.
    #[inline]
    pub fn kind(&self) -> QueueKind {
        self.backend.kind()
    }

    /// Push onto the backend, maintaining the insertion sequence and
    /// high-water mark. Timing (when profiling is on) wraps exactly this
    /// operation on a deterministic 1-in-64 sample of pushes, so
    /// `sched_secs` holds sampled push seconds (the engine's `profile()`
    /// scales them to an estimate).
    #[inline]
    fn push_at(&mut self, at: SimTime, event: E) {
        let item = Scheduled {
            at,
            seq: self.seq,
            event,
        };
        if self.timed && self.seq & PROFILE_SAMPLE_MASK == 0 {
            let t0 = std::time::Instant::now();
            self.backend.push(item);
            self.sched_secs += t0.elapsed().as_secs_f64();
            self.timed_pushes += 1;
        } else {
            self.backend.push(item);
        }
        self.seq += 1;
        self.high_water = self.high_water.max(self.len());
    }

    /// Reserve room for at least `additional` more pending events.
    ///
    /// Pre-sizing is purely an allocation hint: backend layout never affects
    /// pop order (the schedule is a strict total order on `(time, seq)`), so
    /// this cannot change simulation results.
    pub fn reserve(&mut self, additional: usize) {
        self.backend.reserve(additional);
    }

    /// Current allocated capacity of the pending-event backend.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is before the current time.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        self.push_at(at, event);
    }

    /// Schedule `event` after a delay relative to now.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.push_at(self.now + delay, event);
    }

    /// Schedule `event` to run at the current instant, after all events already
    /// queued for this instant (a "call me back immediately" idiom).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_after(SimTime::ZERO, event);
    }

    /// Push `event` at `at` under an externally assigned sequence key.
    ///
    /// This is the sharded engine's entry point: each shard owns a key
    /// counter (tagged with its shard id in the high bits) so that events
    /// arriving from several shards merge in one strict `(time, key)` total
    /// order that is independent of thread scheduling. The queue's own
    /// insertion counter is left untouched; a queue must be driven either
    /// entirely through [`schedule`](Self::schedule) or entirely through the
    /// keyed API — mixing the two would interleave two key spaces.
    ///
    /// # Panics
    /// If `at` is before the current time.
    #[inline]
    pub fn push_keyed(&mut self, at: SimTime, key: u64, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let item = Scheduled {
            at,
            seq: key,
            event,
        };
        if self.timed && key & PROFILE_SAMPLE_MASK == 0 {
            let t0 = std::time::Instant::now();
            self.backend.push(item);
            self.sched_secs += t0.elapsed().as_secs_f64();
            self.timed_pushes += 1;
        } else {
            self.backend.push(item);
        }
        self.high_water = self.high_water.max(self.len());
    }

    /// Stage a pre-run event under an externally assigned key (the keyed
    /// analogue of [`stage`](Self::stage); see [`push_keyed`](Self::push_keyed)
    /// for the key contract).
    ///
    /// # Panics
    /// If called after the first pop, or with `at` in the past.
    pub fn stage_keyed(&mut self, at: SimTime, key: u64, event: E) {
        assert!(
            !self.started,
            "stage_keyed() is for pre-run seeding; the run has already started"
        );
        assert!(
            at >= self.now,
            "cannot stage into the past: at={at} now={}",
            self.now
        );
        self.staged.push(Scheduled {
            at,
            seq: key,
            event,
        });
        self.staged_sorted = false;
        self.high_water = self.high_water.max(self.len());
    }

    /// Stage a pre-run event into the arrivals lane (see module docs).
    ///
    /// The event gets the same insertion seq a [`schedule`](Self::schedule)
    /// call would have assigned, so the merged pop order — and every digest —
    /// is bit-identical to pushing it, but the backend never holds it.
    /// Intended for bulk arrival seeding: at 1M sessions this keeps a
    /// million pre-run events out of the backend entirely.
    ///
    /// # Panics
    /// If called after the first pop, or with `at` in the past.
    pub fn stage(&mut self, at: SimTime, event: E) {
        assert!(
            !self.started,
            "stage() is for pre-run seeding; the run has already started"
        );
        assert!(
            at >= self.now,
            "cannot stage into the past: at={at} now={}",
            self.now
        );
        self.staged.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.staged_sorted = false;
        self.high_water = self.high_water.max(self.len());
    }

    /// Number of pending events (backend + staged lane).
    #[inline]
    pub fn len(&self) -> usize {
        self.backend.len() + self.staged.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        let staged_key = if self.staged_sorted {
            self.staged.last().map(Scheduled::key)
        } else {
            self.staged.iter().map(Scheduled::key).min()
        };
        match (staged_key, self.backend.peek_min()) {
            (None, b) => b.map(|(at, _)| at),
            (s, None) => s.map(|(at, _)| at),
            (Some(s), Some(b)) => Some(s.min(b).0),
        }
    }

    /// Largest number of events ever pending at once.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total events ever pushed onto this queue (the insertion sequence).
    #[inline]
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Pop the globally minimum pending event if it is at or before
    /// `horizon`, advancing the queue clock to its time.
    pub(crate) fn pop_at_most(&mut self, horizon: SimTime) -> PopNext<E> {
        if !self.staged_sorted {
            // One deferred sort instead of n backend pushes; descending so
            // the front is `last()`.
            self.staged.sort_by_key(|s| std::cmp::Reverse(s.key()));
            self.staged_sorted = true;
        }
        self.started = true;
        let staged_key = self.staged.last().map(Scheduled::key);
        let from_staged = match (staged_key, self.backend.min_key()) {
            (None, None) => return PopNext::Empty,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(s), Some(b)) => s < b,
        };
        let key = if from_staged {
            staged_key.expect("staged front vanished")
        } else {
            self.backend.min_key().expect("backend min vanished")
        };
        if key.0 > horizon {
            return PopNext::Beyond;
        }
        let item = if from_staged {
            self.staged.pop().expect("staged front vanished")
        } else {
            self.backend.pop_min().expect("backend min vanished")
        };
        debug_assert!(item.at >= self.now, "event queue time went backwards");
        self.now = item.at;
        PopNext::Event(item)
    }

    /// Advance the clock to `t` if it is ahead (horizon handling).
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }

    pub(crate) fn set_timed(&mut self, timed: bool) {
        self.timed = timed;
    }

    pub(crate) fn sched_secs(&self) -> f64 {
        self.sched_secs
    }

    pub(crate) fn timed_pushes(&self) -> u64 {
        self.timed_pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{check, Gen};

    fn sched(at_us: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at: SimTime::from_micros(at_us),
            seq,
            event: seq,
        }
    }

    /// Drive both backends through an identical randomized push/pop script
    /// and assert identical pop sequences, ties included.
    #[test]
    fn backends_pop_identically_on_randomized_schedules() {
        check(200, |g: &mut Gen| {
            let mut heap = HeapBackend::with_capacity(8);
            let mut cal = CalendarBackend::with_capacity(8);
            let mut seq = 0u64;
            let mut floor = 0u64; // pops only move time forward
            let ops = g.usize_in(1, 401);
            for _ in 0..ops {
                if g.chance(0.03) {
                    // Far-era flood: enough same-era far-future events to
                    // force a grow-rebuild while everything pending is far
                    // ahead of `floor` — the regression pattern where the
                    // scan start used to jump past later nearby pushes.
                    let era = floor + g.u64_in(5_000_000, 60_000_001);
                    for _ in 0..g.usize_in(120, 400) {
                        let at = era + g.u64_in(0, 100_001);
                        heap.push(sched(at, seq));
                        cal.push(sched(at, seq));
                        seq += 1;
                    }
                } else if g.chance(0.6) {
                    // Push: mostly nearby times, deliberate ties, occasional
                    // far-future outliers to force sparse-year scans.
                    let at = if g.chance(0.15) {
                        floor // exact tie with the current minimum's era
                    } else if g.chance(0.05) {
                        floor + g.u64_in(1_000_000, 50_000_001)
                    } else {
                        floor + g.u64_in(0, 5_001)
                    };
                    let burst = g.usize_in(1, 4); // same-time FIFO bursts
                    for _ in 0..burst {
                        heap.push(sched(at, seq));
                        cal.push(sched(at, seq));
                        seq += 1;
                    }
                } else {
                    assert_eq!(heap.min_key(), cal.min_key());
                    assert_eq!(heap.peek_min(), cal.peek_min());
                    let a = heap.pop_min().map(|s| (s.at, s.seq, s.event));
                    let b = cal.pop_min().map(|s| (s.at, s.seq, s.event));
                    assert_eq!(a, b);
                    if let Some((at, _, _)) = a {
                        floor = at.as_micros();
                    }
                }
            }
            // Drain whatever remains; order must still agree exactly.
            loop {
                let a = heap.pop_min().map(|s| (s.at, s.seq));
                let b = cal.pop_min().map(|s| (s.at, s.seq));
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.len(), 0);
            assert_eq!(cal.len(), 0);
        });
    }

    /// Regression: a grow-rebuild while only far-future events were pending
    /// used to jump the calendar's scan start (`cur_day`) to the minimum
    /// *pending* day. Events pushed afterwards at earlier times (legal: any
    /// time ≥ now, and now can sit far below the pending minimum while
    /// arrivals stream from the staged lane) then landed behind the scan
    /// start, and the year-scan returned a later event first.
    #[test]
    fn pushes_behind_a_regrown_calendar_year_still_pop_first() {
        let mut heap = HeapBackend::with_capacity(8);
        let mut cal = CalendarBackend::with_capacity(8);
        let mut seq = 0u64;
        let mut push = |h: &mut HeapBackend<u64>, c: &mut CalendarBackend<u64>, at: u64| {
            h.push(sched(at, seq));
            c.push(sched(at, seq));
            seq += 1;
        };
        // Anchor time low, then pop so `now` ≈ 1ms.
        push(&mut heap, &mut cal, 1_000);
        assert_eq!(
            heap.pop_min().map(|s| s.key()),
            cal.pop_min().map(|s| s.key())
        );
        // Far-future flood forces grow-rebuilds with nothing pending below
        // 10 s; the width re-tune used to drag the scan start up there too.
        for i in 0..300u64 {
            push(&mut heap, &mut cal, 10_000_000 + i);
        }
        // A later push at 32.7 ms — ≥ now, far below every pending event —
        // must still pop first on both backends.
        push(&mut heap, &mut cal, 32_699);
        assert_eq!(cal.peek_min(), Some((SimTime::from_micros(32_699), 301)));
        loop {
            let a = heap.pop_min().map(|s| s.key());
            let b = cal.pop_min().map(|s| s.key());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_resize_preserves_order_through_grow_and_shrink() {
        let mut cal = CalendarBackend::with_capacity(1);
        // Push far more than the initial bucket count to force grows...
        let n = 10_000u64;
        for seq in 0..n {
            // Reversed times so pops interleave eras; ties every 8th event.
            let at = (n - seq) * 97 % 5_000;
            cal.push(sched(at, seq));
        }
        // ...then drain fully, forcing shrinks on the way down.
        let mut prev: Option<(SimTime, u64)> = None;
        let mut popped = 0;
        while let Some(s) = cal.pop_min() {
            if let Some(p) = prev {
                assert!(
                    s.key() > p,
                    "pop order regressed: {:?} after {:?}",
                    s.key(),
                    p
                );
            }
            prev = Some(s.key());
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn calendar_sparse_far_future_events_pop_correctly() {
        let mut cal = CalendarBackend::<u64>::with_capacity(64);
        // Events separated by far more than a bucket "year".
        for (i, at) in [0u64, 3_600_000_000, 7_200_000_000, 7_200_000_001]
            .iter()
            .enumerate()
        {
            cal.push(sched(*at, i as u64));
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop_min().map(|s| s.seq)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    /// The staged lane is indistinguishable from upfront pushes: same pop
    /// sequence, same seqs, same counters — on both backends, with follow-up
    /// events scheduled mid-run to interleave with still-staged arrivals.
    #[test]
    fn staged_lane_matches_upfront_pushes_exactly() {
        check(100, |g: &mut Gen| {
            for kind in QueueKind::ALL {
                let mut staged = EventQueue::new_with(kind, 8);
                let mut pushed = EventQueue::new_with(kind, 8);
                let n = g.usize_in(1, 60);
                let arrivals: Vec<u64> = (0..n)
                    .map(|_| {
                        if g.chance(0.2) {
                            500
                        } else {
                            g.u64_in(0, 10_000)
                        }
                    })
                    .collect();
                for &at in &arrivals {
                    staged.stage(SimTime::from_micros(at), at);
                    pushed.schedule(SimTime::from_micros(at), at);
                }
                let mut chain = g.usize_in(0, 20);
                loop {
                    let a = match staged.pop_at_most(SimTime::MAX) {
                        PopNext::Event(s) => Some((s.at, s.seq, s.event)),
                        _ => None,
                    };
                    let b = match pushed.pop_at_most(SimTime::MAX) {
                        PopNext::Event(s) => Some((s.at, s.seq, s.event)),
                        _ => None,
                    };
                    assert_eq!(a, b, "backend {kind} diverged (seed {})", g.seed());
                    let Some((at, _, _)) = a else { break };
                    // Mid-run follow-ups land among still-staged arrivals.
                    if chain > 0 {
                        chain -= 1;
                        let delta = SimTime::from_micros(g.u64_in(0, 3_000));
                        staged.schedule_after(delta, at.as_micros() + 1);
                        pushed.schedule_after(delta, at.as_micros() + 1);
                    }
                }
                assert_eq!(staged.scheduled(), pushed.scheduled());
                assert_eq!(staged.high_water(), pushed.high_water());
                assert!(staged.is_empty() && pushed.is_empty());
            }
        });
    }

    #[test]
    #[should_panic(expected = "run has already started")]
    fn staging_after_the_first_pop_panics() {
        let mut q = EventQueue::new_with(QueueKind::Heap, 4);
        q.schedule(SimTime::from_micros(1), 1u64);
        let _ = q.pop_at_most(SimTime::MAX);
        q.stage(SimTime::from_micros(2), 2u64);
    }

    #[test]
    fn peek_time_sees_staged_and_backend_events() {
        let mut q = EventQueue::new_with(QueueKind::Calendar, 4);
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(9), 0u64);
        q.stage(SimTime::from_micros(4), 1u64);
        // Staged lane not yet sorted; peek must still find the true minimum.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
        assert_eq!(q.len(), 2);
        match q.pop_at_most(SimTime::MAX) {
            PopNext::Event(s) => assert_eq!(s.at, SimTime::from_micros(4)),
            _ => panic!("expected an event"),
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn queue_kind_parses_and_displays() {
        assert_eq!("heap".parse::<QueueKind>(), Ok(QueueKind::Heap));
        assert_eq!(" Calendar ".parse::<QueueKind>(), Ok(QueueKind::Calendar));
        assert!("fibonacci".parse::<QueueKind>().is_err());
        assert_eq!(QueueKind::Heap.to_string(), "heap");
        assert_eq!(QueueKind::Calendar.to_string(), "calendar");
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
    }
}
