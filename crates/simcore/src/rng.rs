//! Deterministic, forkable random-number streams.
//!
//! Every experiment run owns a [`RunRng`] seeded from an experiment-level seed;
//! components fork private sub-streams by *name*, so adding a new consumer of
//! randomness never perturbs the draws seen by existing components. This is
//! what makes (a) runs reproducible bit-for-bit and (b) rayon-parallel sweeps
//! produce the same numbers as serial sweeps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Zipf};

/// SplitMix64 step — used to derive independent seeds from (seed, stream-id).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a stream name, so forks are identified by stable strings.
#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic random stream with convenience samplers for the
/// distributions the simulator needs.
pub struct RunRng {
    seed: u64,
    rng: SmallRng,
}

impl RunRng {
    /// Create the root stream for an experiment.
    pub fn new(seed: u64) -> Self {
        RunRng {
            seed,
            rng: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork an independent named sub-stream.
    pub fn fork(&self, name: &str) -> RunRng {
        let child = splitmix64(self.seed ^ fnv1a(name).rotate_left(17));
        RunRng {
            seed: child,
            rng: SmallRng::seed_from_u64(splitmix64(child)),
        }
    }

    /// Fork an independent indexed sub-stream (e.g. one per client session).
    pub fn fork_indexed(&self, name: &str, index: u64) -> RunRng {
        let child = splitmix64(self.seed ^ fnv1a(name).rotate_left(17) ^ splitmix64(index + 1));
        RunRng {
            seed: child,
            rng: SmallRng::seed_from_u64(splitmix64(child)),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Exponential with the given mean (clamped to a positive mean).
    #[inline]
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        Exp::new(1.0 / mean)
            .expect("positive rate")
            .sample(&mut self.rng)
    }

    /// Log-normal parameterized by its *linear-scale* mean and coefficient of
    /// variation. Service-time jitter in the tier models uses this: positive,
    /// right-skewed, mean-preserving.
    #[inline]
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
            .expect("valid lognormal")
            .sample(&mut self.rng)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s` (item popularity).
    #[inline]
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        Zipf::new(n, s).expect("valid zipf").sample(&mut self.rng) as u64
    }

    /// Pick an index according to a weight table (weights need not sum to 1).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.uniform01() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Access the raw RNG for anything not covered above.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RunRng::new(42);
        let mut b = RunRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform01().to_bits(), b.uniform01().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RunRng::new(1);
        let mut b = RunRng::new(2);
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent1 = RunRng::new(7);
        let mut parent2 = RunRng::new(7);
        // Consuming from one parent must not change what its forks produce.
        let _ = parent2.uniform01();
        let mut f1 = parent1.fork("apache");
        let mut f2 = parent2.fork("apache");
        for _ in 0..32 {
            assert_eq!(f1.uniform01().to_bits(), f2.uniform01().to_bits());
        }
    }

    #[test]
    fn named_forks_differ() {
        let root = RunRng::new(9);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn indexed_forks_differ() {
        let root = RunRng::new(9);
        let mut a = root.fork_indexed("client", 0);
        let mut b = root.fork_indexed("client", 1);
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn exp_mean_matches_requested_mean() {
        let mut r = RunRng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp_mean(7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn lognormal_matches_mean_and_is_positive() {
        let mut r = RunRng::new(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(2.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = RunRng::new(6);
        assert_eq!(r.lognormal_mean_cv(3.5, 0.0), 3.5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RunRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = RunRng::new(13);
        let w = [1.0, 3.0];
        let ones = (0..40_000).filter(|_| r.weighted_index(&w) == 1).count();
        let frac = ones as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac was {frac}");
    }

    #[test]
    fn weighted_index_handles_trailing_zero_weight() {
        let mut r = RunRng::new(14);
        for _ in 0..1000 {
            let i = r.weighted_index(&[1.0, 0.0]);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = RunRng::new(15);
        let n = 20_000;
        let low = (0..n).filter(|_| r.zipf(100, 1.0) <= 10).count();
        assert!(low as f64 / n as f64 > 0.4);
    }
}
