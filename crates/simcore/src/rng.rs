//! Deterministic, forkable random-number streams.
//!
//! Every experiment run owns a [`RunRng`] seeded from an experiment-level seed;
//! components fork private sub-streams by *name*, so adding a new consumer of
//! randomness never perturbs the draws seen by existing components. This is
//! what makes (a) runs reproducible bit-for-bit and (b) parallel sweeps
//! produce the same numbers as serial sweeps.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), seeded
//! via SplitMix64, with inversion/Box–Muller/rejection-inversion samplers for
//! the distributions the simulator needs. No external crates: the workspace
//! must build in fully offline environments.

/// SplitMix64 step — used to derive independent seeds from (seed, stream-id)
/// and to expand a single `u64` seed into full generator state.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a stream name, so forks are identified by stable strings.
#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// xoshiro256++ core generator (public so [`RunRng::raw`] has a nameable type).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from one `u64` via repeated SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut t = z;
            t = (t ^ (t >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            t = (t ^ (t >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = t ^ (t >> 31);
        }
        Xoshiro256pp { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A deterministic random stream with convenience samplers for the
/// distributions the simulator needs.
///
/// `Clone` copies the full stream state: the clone continues the exact same
/// sequence. Use [`fork`](Self::fork)/[`fork_indexed`](Self::fork_indexed)
/// for *independent* sub-streams.
#[derive(Clone)]
pub struct RunRng {
    seed: u64,
    rng: Xoshiro256pp,
}

impl RunRng {
    /// Create the root stream for an experiment.
    pub fn new(seed: u64) -> Self {
        RunRng {
            seed,
            rng: Xoshiro256pp::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork an independent named sub-stream.
    pub fn fork(&self, name: &str) -> RunRng {
        let child = splitmix64(self.seed ^ fnv1a(name).rotate_left(17));
        RunRng {
            seed: child,
            rng: Xoshiro256pp::seed_from_u64(splitmix64(child)),
        }
    }

    /// Fork an independent indexed sub-stream (e.g. one per client session).
    pub fn fork_indexed(&self, name: &str, index: u64) -> RunRng {
        let child = splitmix64(self.seed ^ fnv1a(name).rotate_left(17) ^ splitmix64(index + 1));
        RunRng {
            seed: child,
            rng: Xoshiro256pp::seed_from_u64(splitmix64(child)),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)` (Lemire multiply-shift; bias is < 2⁻⁶⁴·n,
    /// negligible for the table sizes the simulator uses).
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Exponential with the given mean (clamped to a positive mean).
    #[inline]
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inversion: -mean · ln(1 − U), with U ∈ [0, 1) so the log is finite.
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Standard normal via Box–Muller (one draw per call; the sibling draw is
    /// discarded to keep the stream position independent of call pairing).
    #[inline]
    fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform01(); // (0, 1]: keeps ln finite
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal parameterized by its *linear-scale* mean and coefficient of
    /// variation. Service-time jitter in the tier models uses this: positive,
    /// right-skewed, mean-preserving.
    #[inline]
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s` (item popularity).
    ///
    /// Rejection-inversion sampling (Hörmann & Derflinger 1996): exact for any
    /// `n` without precomputing the harmonic normalizer.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        debug_assert!(n >= 1 && s > 0.0);
        let nf = n as f64;
        let h_x1 = zipf_h_integral(1.5, s) - 1.0;
        let h_n = zipf_h_integral(nf + 0.5, s);
        let d = 2.0 - zipf_h_integral_inv(zipf_h_integral(2.5, s) - zipf_h(2.0, s), s);
        loop {
            let u = h_n + self.uniform01() * (h_x1 - h_n);
            let x = zipf_h_integral_inv(u, s);
            let k = (x + 0.5).floor().clamp(1.0, nf);
            if k - x <= d || u >= zipf_h_integral(k + 0.5, s) - zipf_h(k, s) {
                return k as u64;
            }
        }
    }

    /// Pick an index according to a weight table (weights need not sum to 1).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.uniform01() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Access the raw generator for anything not covered above.
    pub fn raw(&mut self) -> &mut Xoshiro256pp {
        &mut self.rng
    }
}

/// h(x) = x^(−s).
#[inline]
fn zipf_h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// H(x) = ∫ x^(−s) dx, in the numerically robust helper form.
#[inline]
fn zipf_h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    zipf_helper2((1.0 - s) * log_x) * log_x
}

/// H⁻¹(y).
#[inline]
fn zipf_h_integral_inv(y: f64, s: f64) -> f64 {
    let t = (y * (1.0 - s)).max(-1.0);
    (zipf_helper1(t) * y).exp()
}

/// ln(1 + x) / x, stable near zero.
#[inline]
fn zipf_helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x / 3.0)
    }
}

/// (e^x − 1) / x, stable near zero.
#[inline]
fn zipf_helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * (0.5 + x / 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RunRng::new(42);
        let mut b = RunRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform01().to_bits(), b.uniform01().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RunRng::new(1);
        let mut b = RunRng::new(2);
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent1 = RunRng::new(7);
        let mut parent2 = RunRng::new(7);
        // Consuming from one parent must not change what its forks produce.
        let _ = parent2.uniform01();
        let mut f1 = parent1.fork("apache");
        let mut f2 = parent2.fork("apache");
        for _ in 0..32 {
            assert_eq!(f1.uniform01().to_bits(), f2.uniform01().to_bits());
        }
    }

    #[test]
    fn named_forks_differ() {
        let root = RunRng::new(9);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn indexed_forks_differ() {
        let root = RunRng::new(9);
        let mut a = root.fork_indexed("client", 0);
        let mut b = root.fork_indexed("client", 1);
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform01_is_in_range_and_well_spread() {
        let mut r = RunRng::new(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.uniform01();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = RunRng::new(8);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[r.index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i} frac {frac}");
        }
    }

    #[test]
    fn exp_mean_matches_requested_mean() {
        let mut r = RunRng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp_mean(7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn lognormal_matches_mean_and_is_positive() {
        let mut r = RunRng::new(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(2.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = RunRng::new(6);
        assert_eq!(r.lognormal_mean_cv(3.5, 0.0), 3.5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RunRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = RunRng::new(13);
        let w = [1.0, 3.0];
        let ones = (0..40_000).filter(|_| r.weighted_index(&w) == 1).count();
        let frac = ones as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac was {frac}");
    }

    #[test]
    fn weighted_index_handles_trailing_zero_weight() {
        let mut r = RunRng::new(14);
        for _ in 0..1000 {
            let i = r.weighted_index(&[1.0, 0.0]);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = RunRng::new(15);
        let n = 20_000;
        let low = (0..n).filter(|_| r.zipf(100, 1.0) <= 10).count();
        assert!(low as f64 / n as f64 > 0.4);
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut r = RunRng::new(16);
        for _ in 0..20_000 {
            let k = r.zipf(50, 0.8);
            assert!((1..=50).contains(&k), "rank {k}");
        }
    }
}
