//! Deterministic randomized-test support.
//!
//! The workspace's property-style tests used to be written against an
//! external property-testing framework; to keep the workspace buildable with
//! no registry access they now iterate a fixed number of seeded cases drawn
//! from [`Gen`] — same invariant coverage, deterministic by construction, and
//! a failing case is reproducible from the printed seed alone.

use crate::rng::RunRng;

/// A seeded case generator for randomized tests.
pub struct Gen {
    rng: RunRng,
    seed: u64,
}

impl Gen {
    /// Generator for one test case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: RunRng::new(seed ^ 0x7e57_7e57_7e57_7e57),
            seed,
        }
    }

    /// The case seed — include it in assertion messages.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + (self.rng.index((hi - lo) as usize)) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo);
        lo + self.rng.index(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Vector of uniform `f64`s with a length drawn from `[min_len, max_len)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Vector of uniform `u64`s with a length drawn from `[min_len, max_len)`.
    pub fn vec_u64(&mut self, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.u64_in(lo, hi)).collect()
    }

    /// The underlying stream, for anything not covered above.
    pub fn rng(&mut self) -> &mut RunRng {
        &mut self.rng
    }
}

/// Run `body` for `cases` deterministic seeds (0, 1, …). Panics propagate
/// with the case seed, so failures reproduce exactly.
pub fn check(cases: u64, mut body: impl FnMut(&mut Gen)) {
    for seed in 0..cases {
        let mut g = Gen::new(seed);
        body(&mut g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::new(3);
        let mut b = Gen::new(3);
        assert_eq!(a.vec_f64(0.0, 1.0, 5, 20), b.vec_f64(0.0, 1.0, 5, 20));
        assert_eq!(a.u64_in(10, 100), b.u64_in(10, 100));
    }

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check(17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn ranges_are_respected() {
        check(8, |g| {
            let v = g.vec_u64(5, 9, 1, 30);
            assert!(!v.is_empty() && v.len() < 30);
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        });
    }
}
