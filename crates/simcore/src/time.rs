//! Simulated time as integer microseconds.
//!
//! Using an integer representation keeps the event queue totally ordered and
//! free of floating-point accumulation error; microsecond resolution is ample
//! for millisecond-scale service times while still allowing multi-hour runs
//! (`u64` microseconds covers ~584 000 years).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in microseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided is the natural one for both readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero timestamp / empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future — useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);
    /// Number of microseconds in one second.
    pub const MICROS_PER_SEC: u64 = 1_000_000;

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * Self::MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative and non-finite inputs clamp to zero: service-time samplers can
    /// in principle produce tiny negative values after arithmetic and a
    /// simulation must never schedule into the past.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * Self::MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional milliseconds (clamped like [`from_secs_f64`](Self::from_secs_f64)).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::MICROS_PER_SEC as f64
    }

    /// Value in milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction (useful for elapsed-time computations).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a duration by a float factor (rounding; clamped at zero).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics on underflow in debug builds, like integer subtraction.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
        assert_eq!(SimTime::from_millis_f64(0.25), SimTime::from_micros(250));
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(a + b, SimTime::from_secs(7));
        assert_eq!(b - a, SimTime::from_secs(3));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_secs(6));
        assert_eq!(b / 5, SimTime::from_secs(1));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn round_trips() {
        let t = SimTime::from_micros(1_234_567);
        assert!((t.as_secs_f64() - 1.234_567).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1234.567).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(t.as_secs_f64()), t);
    }

    #[test]
    fn mul_f64_scales() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.mul_f64(0.5), SimTime::from_secs(5));
        assert_eq!(t.mul_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }
}
