//! Streaming statistics primitives.
//!
//! The paper's analyses are built from a handful of observables: averages and
//! distributions of response times, time-weighted utilizations sampled at one
//! second granularity, and per-interval counters. This module provides the
//! corresponding accumulators, all O(1) per observation and allocation-free on
//! the hot path.

use crate::time::SimTime;

// ---------------------------------------------------------------------------
// Welford / summary statistics
// ---------------------------------------------------------------------------

/// Streaming count/mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// New empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Fixed-bin histogram
// ---------------------------------------------------------------------------

/// Histogram over explicit bin edges (used for the paper's Fig. 3(c)
/// response-time distribution: `[0,.2] [.2,.4] ... [1.5,2] >2`).
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Build from ascending edges; bin `i` covers `[edges[i], edges[i+1])`.
    ///
    /// # Panics
    /// If fewer than two edges are supplied or the edges are not ascending.
    pub fn with_edges(edges: &[f64]) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() - 1],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.edges[0] {
            self.underflow += 1;
            return;
        }
        if x >= *self.edges.last().expect("non-empty edges") {
            self.overflow += 1;
            return;
        }
        // Binary search for the containing bin.
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&x).expect("no NaN edges"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Observations above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }
}

// ---------------------------------------------------------------------------
// Log-scale histogram with quantiles
// ---------------------------------------------------------------------------

/// Logarithmic histogram for positive values (response times), supporting
/// approximate quantiles with bounded relative error.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Smallest representable value; anything below lands in bucket 0.
    floor: f64,
    /// Per-bucket growth factor.
    growth: f64,
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// `floor` = resolution floor (e.g. 1 µs = 1e-6 s); `growth` = per-bucket
    /// factor (1.02 ⇒ ≤ 2% relative quantile error); `buckets` = bucket count.
    pub fn new(floor: f64, growth: f64, buckets: usize) -> Self {
        assert!(floor > 0.0 && growth > 1.0 && buckets >= 2);
        LogHistogram {
            floor,
            growth,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// A sensible default for response times in seconds: 10 µs floor, 2%
    /// buckets, covering up to ~10⁵ s.
    pub fn response_times() -> Self {
        LogHistogram::new(1e-5, 1.02, 1200)
    }

    /// Record a value (non-positive values count into the lowest bucket).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let idx = if x <= self.floor {
            0
        } else {
            (((x / self.floor).ln() / self.log_growth) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q ∈ [0,1]` (`None` if empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Geometric midpoint of the bucket.
                let lo = self.floor * self.growth.powi(i as i32);
                return Some(lo * self.growth.sqrt());
            }
        }
        Some(self.floor * self.growth.powi(self.counts.len() as i32))
    }

    /// Fraction of observations at or below `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let hi = self.floor * self.growth.powi(i as i32 + 1);
            if hi <= x {
                acc += c;
            } else {
                break;
            }
        }
        acc as f64 / self.total as f64
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert!((self.floor - other.floor).abs() < 1e-12);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

// ---------------------------------------------------------------------------
// Time-weighted value (utilization integrals)
// ---------------------------------------------------------------------------

/// Integrates a piecewise-constant signal over simulated time — the primitive
/// behind CPU-utilization and pool-occupancy averages.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Start integrating at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            value: v0,
            integral: 0.0,
            peak: v0,
            started: t0,
        }
    }

    /// Set the signal to `v` at time `t` (accumulating the previous segment).
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards in TimeWeighted");
        self.integral += self.value * t.saturating_sub(self.last_t).as_secs_f64();
        self.last_t = t;
        self.value = v;
        if v > self.peak {
            self.peak = v;
        }
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average over `[start, t]`, closing the running segment at `t`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.saturating_sub(self.started).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        (self.integral + self.value * t.saturating_sub(self.last_t).as_secs_f64()) / span
    }

    /// Reset the integration window to start at `t` (value is retained).
    pub fn reset_window(&mut self, t: SimTime) {
        self.integral = 0.0;
        self.last_t = t;
        self.started = t;
        self.peak = self.value;
    }

    /// Raw integral so far (value·seconds), not closing the running segment.
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

// ---------------------------------------------------------------------------
// Per-interval series (the "SysStat" sampler)
// ---------------------------------------------------------------------------

/// Accumulates values into fixed-width time buckets — e.g. requests processed
/// per second (paper Fig. 7(a)) or per-second CPU utilization samples.
#[derive(Debug, Clone)]
pub struct IntervalSeries {
    interval: SimTime,
    origin: SimTime,
    buckets: Vec<f64>,
}

impl IntervalSeries {
    /// New series with buckets of width `interval`, starting at `origin`.
    pub fn new(origin: SimTime, interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO);
        IntervalSeries {
            interval,
            origin,
            buckets: Vec::new(),
        }
    }

    /// Add `amount` to the bucket containing time `t` (events before the
    /// origin are ignored — they belong to ramp-up).
    pub fn add(&mut self, t: SimTime, amount: f64) {
        if t < self.origin {
            return;
        }
        let idx = ((t - self.origin).as_micros() / self.interval.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Count one occurrence at time `t`.
    pub fn incr(&mut self, t: SimTime) {
        self.add(t, 1.0);
    }

    /// The per-bucket totals.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// Bucket width.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// Mean across buckets `[from, to)` (clamped to available data).
    pub fn mean_over(&self, from: usize, to: usize) -> f64 {
        let hi = to.min(self.buckets.len());
        let lo = from.min(hi);
        if hi == lo {
            return 0.0;
        }
        self.buckets[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }
}

// ---------------------------------------------------------------------------
// Windowed piecewise-constant signal integrator
// ---------------------------------------------------------------------------

/// Integrates a piecewise-constant signal into fixed-width time buckets: the
/// fine-grained cousin of [`TimeWeighted`] (which keeps one running window)
/// and [`IntervalSeries`] (which counts events rather than levels).
///
/// Two mutually exclusive feeding styles:
/// * [`set`](Self::set) — the signal holds its last value between calls
///   (pool occupancy, queue lengths);
/// * [`add_segment`](Self::add_segment) — the caller hands over explicit
///   `(start, dt, value)` segments (the CPU's virtual-time walk, which knows
///   its own busy level per segment).
///
/// Writes are *observation only*: nothing here feeds back into the caller,
/// so attaching one to a live resource cannot perturb a simulation.
#[derive(Debug, Clone)]
pub struct WindowedSignal {
    origin_secs: f64,
    width_secs: f64,
    /// Integral of the signal (value·seconds) per bucket.
    buckets: Vec<f64>,
    /// Current level and the time it was set (for the `set` style).
    value: f64,
    last_secs: f64,
}

impl WindowedSignal {
    /// New signal with buckets of `width` starting at `origin`. Contributions
    /// before `origin` are dropped (they belong to ramp-up).
    pub fn new(origin: SimTime, width: SimTime) -> Self {
        assert!(width > SimTime::ZERO, "window width must be positive");
        WindowedSignal {
            origin_secs: origin.as_secs_f64(),
            width_secs: width.as_secs_f64(),
            buckets: Vec::new(),
            value: 0.0,
            last_secs: origin.as_secs_f64(),
        }
    }

    /// Bucket width in seconds.
    pub fn width_secs(&self) -> f64 {
        self.width_secs
    }

    /// Grid origin in seconds (shared by signals created together, which
    /// lets fused writers do one overlap walk for several signals).
    pub fn origin_secs(&self) -> f64 {
        self.origin_secs
    }

    /// Walk the buckets a segment `[start, start + dt)` overlaps on the
    /// grid `(origin, width)`, calling `f(bucket, overlap_seconds)` once per
    /// bucket. Pre-origin time is clipped (it belongs to ramp-up). This is
    /// the single splitting routine: [`add_segment`](Self::add_segment) is a
    /// thin wrapper, and hot paths that feed several same-grid signals from
    /// one segment (the CPU's busy/frozen/run-queue triple) call it directly
    /// to pay for the walk once.
    #[inline]
    pub fn for_each_overlap(
        origin_secs: f64,
        width_secs: f64,
        start_secs: f64,
        dt: f64,
        mut f: impl FnMut(usize, f64),
    ) {
        let mut lo = start_secs.max(origin_secs);
        let hi = start_secs + dt;
        if hi <= lo {
            return;
        }
        while lo < hi {
            let mut idx = ((lo - origin_secs) / width_secs) as usize;
            let mut edge = origin_secs + (idx as f64 + 1.0) * width_secs;
            // `lo` can land a rounding error below a bucket edge, making the
            // division floor to the previous bucket whose edge is not beyond
            // `lo`; step to the next bucket so the loop always progresses.
            if edge <= lo {
                idx += 1;
                edge = origin_secs + (idx as f64 + 1.0) * width_secs;
            }
            let seg_hi = hi.min(edge);
            f(idx, seg_hi - lo);
            lo = seg_hi;
        }
    }

    /// Add `value · seconds` into bucket `idx` directly, growing the store.
    /// For fused writers driving [`for_each_overlap`](Self::for_each_overlap)
    /// themselves; everyone else wants [`add_segment`](Self::add_segment).
    #[inline]
    pub fn add_at(&mut self, idx: usize, value_seconds: f64) {
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value_seconds;
    }

    /// Distribute `value` over the segment `[start, start + dt)`, split
    /// across bucket boundaries.
    pub fn add_segment(&mut self, start_secs: f64, dt: f64, value: f64) {
        if dt <= 0.0 || value == 0.0 {
            return;
        }
        Self::for_each_overlap(
            self.origin_secs,
            self.width_secs,
            start_secs,
            dt,
            |idx, secs| {
                if idx >= self.buckets.len() {
                    self.buckets.resize(idx + 1, 0.0);
                }
                self.buckets[idx] += value * secs;
            },
        );
    }

    /// Record that the signal changes to `v` at time `t`; the previous level
    /// is integrated over `[last_change, t)` first.
    pub fn set(&mut self, t: SimTime, v: f64) {
        let t_secs = t.as_secs_f64();
        self.add_segment(self.last_secs, t_secs - self.last_secs, self.value);
        self.last_secs = self.last_secs.max(t_secs);
        self.value = v;
    }

    /// Integrate the held level up to `t` without changing it (used before a
    /// final read in the `set` style).
    pub fn flush(&mut self, t: SimTime) {
        let v = self.value;
        self.set(t, v);
    }

    /// Per-bucket time-averages (integral / width) for the first `n` buckets;
    /// buckets never touched read as 0.
    pub fn means(&self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.buckets.get(i).copied().unwrap_or(0.0) / self.width_secs)
            .collect()
    }

    /// Raw per-bucket integrals (value·seconds).
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_basic() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert!((w.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_is_sane() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::with_edges(&[0.0, 0.2, 0.4, 1.0]);
        h.add(0.1); // bin 0
        h.add(0.2); // bin 1 (left-closed)
        h.add(0.39); // bin 1
        h.add(0.5); // bin 2
        h.add(2.0); // overflow
        h.add(-0.1); // underflow
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::with_edges(&[0.0, 2.0, 1.0]);
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::response_times();
        for i in 1..=1000 {
            h.add(i as f64 / 1000.0); // 1ms..1s uniform
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 0.5).abs() / 0.5 < 0.05, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 0.99).abs() / 0.99 < 0.05, "p99={p99}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn log_histogram_fraction_le() {
        let mut h = LogHistogram::response_times();
        for i in 1..=100 {
            h.add(i as f64); // 1..100 s
        }
        let f = h.fraction_le(50.0);
        assert!((f - 0.5).abs() < 0.05, "fraction={f}");
        assert_eq!(h.fraction_le(0.0001), 0.0);
        assert!((h.fraction_le(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::response_times();
        let mut b = LogHistogram::response_times();
        a.add(0.1);
        b.add(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.fraction_le(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 1.0); // 0 for 10s
        tw.set(SimTime::from_secs(30), 0.5); // 1 for 20s
        let avg = tw.average_until(SimTime::from_secs(40)); // 0.5 for 10s
                                                            // (0*10 + 1*20 + 0.5*10) / 40 = 25/40
        assert!((avg - 0.625).abs() < 1e-12);
        assert_eq!(tw.peak(), 1.0);
        assert_eq!(tw.current(), 0.5);
    }

    #[test]
    fn time_weighted_window_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(5), 0.0);
        tw.reset_window(SimTime::from_secs(5));
        let avg = tw.average_until(SimTime::from_secs(10));
        assert_eq!(avg, 0.0);
    }

    #[test]
    fn interval_series_buckets() {
        let mut s = IntervalSeries::new(SimTime::from_secs(10), SimTime::from_secs(1));
        s.incr(SimTime::from_secs(9)); // before origin: ignored
        s.incr(SimTime::from_millis(10_100));
        s.incr(SimTime::from_millis(10_900));
        s.incr(SimTime::from_millis(12_000));
        assert_eq!(s.buckets(), &[2.0, 0.0, 1.0]);
        assert!((s.mean_over(0, 3) - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_over(5, 9), 0.0);
    }

    #[test]
    fn windowed_signal_set_style() {
        let mut w = WindowedSignal::new(SimTime::from_secs(10), SimTime::from_millis(100));
        w.set(SimTime::from_secs(10), 2.0); // level 2 from t=10
        w.set(SimTime::from_millis(10_050), 4.0); // level 4 from t=10.05
        w.flush(SimTime::from_millis(10_200));
        let m = w.means(3);
        // Window 0: 2*0.05 + 4*0.05 = 0.3 → mean 3.0; window 1: 4.0.
        assert!((m[0] - 3.0).abs() < 1e-9, "{m:?}");
        assert!((m[1] - 4.0).abs() < 1e-9, "{m:?}");
        assert_eq!(m[2], 0.0);
    }

    #[test]
    fn windowed_signal_segments_split_across_buckets() {
        let mut w = WindowedSignal::new(SimTime::ZERO, SimTime::from_millis(100));
        // One segment spanning 3 windows at level 1.
        w.add_segment(0.05, 0.20, 1.0);
        let m = w.means(3);
        assert!((m[0] - 0.5).abs() < 1e-9, "{m:?}");
        assert!((m[1] - 1.0).abs() < 1e-9, "{m:?}");
        assert!((m[2] - 0.5).abs() < 1e-9, "{m:?}");
    }

    #[test]
    fn windowed_signal_drops_pre_origin() {
        let mut w = WindowedSignal::new(SimTime::from_secs(1), SimTime::from_millis(100));
        w.add_segment(0.0, 1.05, 1.0); // only [1.0, 1.05) lands in window 0
        let m = w.means(1);
        assert!((m[0] - 0.5).abs() < 1e-9, "{m:?}");
    }

    #[test]
    fn windowed_signal_untouched_buckets_read_zero() {
        let w = WindowedSignal::new(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(w.means(4), vec![0.0; 4]);
    }
}
