//! # simcore — discrete-event simulation substrate
//!
//! This crate is the foundation of the n-tier application simulator used to
//! reproduce *"The Impact of Soft Resource Allocation on n-Tier Application
//! Scalability"* (IPDPS 2011). It provides:
//!
//! * [`SimTime`] — simulated time as integer microseconds (cheap, total-ordered,
//!   no floating-point drift in the event queue).
//! * [`Engine`] / [`EventQueue`] / [`Model`] — a classic event-list simulator:
//!   the model is a plain `&mut` state machine, events are a user-defined enum,
//!   and the engine pops events in `(time, insertion-order)` order. No `Rc`,
//!   no `RefCell`, no dynamic dispatch on the hot path. The future-event list
//!   is backend-pluggable ([`queue`]: binary heap or calendar queue, selected
//!   by [`QueueKind`]) with provably identical pop order either way.
//! * [`rng`] — deterministic, forkable random-number streams so that every
//!   experiment is exactly reproducible and parallel parameter sweeps are
//!   independent of scheduling order.
//! * [`stats`] — streaming statistics: Welford accumulators, fixed and
//!   logarithmic histograms with quantiles, time-weighted integrals (for
//!   utilization), and per-interval series (the "SysStat at one second
//!   granularity" of the paper).
//!
//! The engine is deliberately minimal: all domain behaviour (CPUs, pools,
//! servers, clients) lives in the crates layered on top.

pub mod engine;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod testkit;
pub mod time;

pub use engine::{Engine, EngineStats, Model, StepResult};
pub use profile::{peak_rss_bytes, EngineProfile, ShardLoad};
pub use queue::{
    CalendarBackend, EventQueue, EventQueueBackend, HeapBackend, QueueKind, Scheduled,
};
pub use rng::RunRng;
pub use shard::{shard_key, ShardIo, ShardModel, ShardedEngine, SHARD_KEY_BITS};
pub use time::SimTime;
