//! Engine profiling: phase timings, counters, and a peak-RSS probe.
//!
//! The profiler is the observability face of the event loop. It is *passive*
//! in exactly the sense the windowed-metrics pipeline is: profiling draws no
//! random numbers, schedules no events, and never touches model state, so a
//! profiled run produces bit-identical simulation output to an unprofiled
//! one. What it adds is wall-clock bookkeeping — how long the engine spent
//! popping the event queue versus dispatching into the model versus pushing
//! new events — plus the per-event-kind counts the telemetry flag already
//! collects, and a process-level peak-RSS reading.
//!
//! Everything is off by default
//! ([`Engine::enable_profiling`](crate::Engine::enable_profiling) opts in), so
//! the hot path of an unprofiled run pays one untaken branch per event.

use crate::engine::EngineStats;

/// Phase-timing and counter profile of one engine run.
///
/// Captured with [`Engine::profile`](crate::Engine::profile) after a run
/// with profiling enabled. Phase seconds (`pop_secs`, `dispatch_secs`,
/// `sched_secs`) are whole-run *estimates*: the engine times a
/// deterministic 1-in-64 sample of event cycles (clock reads on every
/// cycle would dominate the loop) and scales the sampled sums by the
/// sampling fraction. Sampled cycles include the cost of their own timing
/// probes, which is the profiler's residual overhead showing up honestly
/// in its report.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    /// Total events processed.
    pub events_processed: u64,
    /// Total events pushed onto the queue (including initial seeding).
    pub events_scheduled: u64,
    /// Wall-clock seconds spent popping the queue and advancing the clock.
    pub pop_secs: f64,
    /// Wall-clock seconds spent inside `Model::handle` (this *includes* the
    /// time the model spends scheduling follow-up events — `sched_secs` is
    /// the measured sub-phase).
    pub dispatch_secs: f64,
    /// Wall-clock seconds spent pushing events onto the queue.
    pub sched_secs: f64,
    /// Wall-clock seconds spent inside `run_until`/`run_to_quiescence`.
    pub wall_secs: f64,
    /// Peak number of pending events, whatever the queue backend (staged
    /// arrivals included).
    pub queue_high_water: usize,
    /// Allocated capacity of the pending-event backend at snapshot time.
    pub queue_capacity: usize,
    /// Per-event-kind counts, in first-seen order (labels from
    /// [`Model::event_label`](crate::Model::event_label)).
    pub per_type: Vec<(&'static str, u64)>,
    /// Process peak resident set size in bytes (`VmHWM` from
    /// `/proc/self/status` on Linux; `None` where no probe exists). Note the
    /// kernel counter is a high-water mark for the whole process, so in a
    /// multi-run process it is cumulative across runs.
    pub peak_rss_bytes: Option<u64>,
    /// Barrier rounds executed by a sharded run (0 for the serial engine).
    pub rounds: u64,
    /// Per-shard load attribution of a sharded run (empty for the serial
    /// engine): events, wall-clock busy seconds inside rounds, and
    /// wall-clock seconds stalled at round barriers.
    pub shards: Vec<ShardLoad>,
}

/// One shard's share of a sharded run: how much it worked and how long it
/// waited for the other shards at the round barriers. `stall / wall` is the
/// *horizon-stall share* — the headline diagnostic for a parallel point that
/// failed to speed up (short lookahead ⇒ many rounds ⇒ mostly stall).
/// A parallel run times every round; the one-worker round loop estimates
/// busy seconds from a deterministic 1-in-16 round sample (scaled back up),
/// like the engine's pop/dispatch phase timings. On a host with fewer cores
/// than workers the clocks include involuntary preemption, so read the
/// figures as scheduler-level attribution, not pure simulation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLoad {
    /// Shard index (shard 0 is the layout's front shard by convention).
    pub shard: usize,
    /// Events this shard processed.
    pub events_processed: u64,
    /// Wall-clock seconds spent processing rounds on this shard.
    pub busy_secs: f64,
    /// Wall-clock seconds this shard's worker spent waiting at barriers
    /// (attributed evenly when one worker owns several shards).
    pub stall_secs: f64,
}

impl ShardLoad {
    /// Fraction of `wall_secs` this shard spent busy.
    pub fn utilization(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.busy_secs / wall_secs
        } else {
            0.0
        }
    }

    /// Fraction of `wall_secs` this shard spent stalled at barriers.
    pub fn stall_share(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.stall_secs / wall_secs
        } else {
            0.0
        }
    }
}

impl EngineProfile {
    /// Events processed per wall-clock second (0 when nothing was timed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The run's [`EngineStats`] view of this profile.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            queue_high_water: self.queue_high_water,
            queue_capacity: self.queue_capacity,
            wall_secs: self.wall_secs,
            per_type: self.per_type.clone(),
        }
    }

    /// Render the profile as an aligned plain-text summary table (the
    /// `--profile` output of the bench/example harnesses).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let pct = |phase: f64| {
            if self.wall_secs > 0.0 {
                100.0 * phase / self.wall_secs
            } else {
                0.0
            }
        };
        s.push_str(&format!(
            "  events     {:>12}   ({:.0} events/sec)\n",
            self.events_processed,
            self.events_per_sec()
        ));
        s.push_str(&format!(
            "  scheduled  {:>12}   queue high-water {} / capacity {}\n",
            self.events_scheduled, self.queue_high_water, self.queue_capacity
        ));
        s.push_str(&format!(
            "  wall       {:>12.3}s  pop {:.3}s ({:.1}%)  dispatch {:.3}s ({:.1}%)  sched {:.3}s ({:.1}%)\n",
            self.wall_secs,
            self.pop_secs,
            pct(self.pop_secs),
            self.dispatch_secs,
            pct(self.dispatch_secs),
            self.sched_secs,
            pct(self.sched_secs),
        ));
        match self.peak_rss_bytes {
            Some(b) => s.push_str(&format!(
                "  peak rss   {:>12.1} MiB\n",
                b as f64 / (1024.0 * 1024.0)
            )),
            None => s.push_str("  peak rss        (no probe on this platform)\n"),
        }
        if !self.shards.is_empty() {
            s.push_str(&format!(
                "  rounds     {:>12}   across {} shards\n",
                self.rounds,
                self.shards.len()
            ));
            for sh in &self.shards {
                s.push_str(&format!(
                    "    shard {}  {:>12} events  util {:>5.1}%  stall {:>5.1}%\n",
                    sh.shard,
                    sh.events_processed,
                    100.0 * sh.utilization(self.wall_secs),
                    100.0 * sh.stall_share(self.wall_secs),
                ));
            }
        }
        if !self.per_type.is_empty() {
            let mut by_count: Vec<_> = self.per_type.clone();
            by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            s.push_str("  per event kind:\n");
            for (label, n) in by_count {
                let share = if self.events_processed > 0 {
                    100.0 * n as f64 / self.events_processed as f64
                } else {
                    0.0
                };
                s.push_str(&format!("    {label:<20} {n:>12}  ({share:>5.1}%)\n"));
            }
        }
        s
    }
}

/// Process peak resident set size in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux. On platforms without
/// that interface the probe degrades gracefully to `None` — callers must
/// treat the reading as optional.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parse the `VmHWM:` line of a `/proc/<pid>/status` dump (kB → bytes).
///
/// A reading of 0 is treated as "no probe" rather than a measurement: no
/// live process has a zero high-water mark, so a zero can only come from a
/// broken or synthetic `/proc`, and reporting it as a number would poison
/// `BENCH_*.json` peak-RSS deltas with garbage.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return if kb == 0 { None } else { Some(kb * 1024) };
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_proc_status_format() {
        let status = "Name:\tcargo\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(98304 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
        // A zero high-water mark is a broken probe, not a measurement.
        assert_eq!(parse_vm_hwm("VmHWM:\t       0 kB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_probe_reads_something_plausible() {
        let rss = peak_rss_bytes().expect("Linux has /proc/self/status");
        // A running test binary occupies at least a megabyte.
        assert!(rss > 1024 * 1024, "peak rss {rss} implausibly small");
    }

    #[test]
    fn events_per_sec_handles_zero_wall() {
        let p = EngineProfile::default();
        assert_eq!(p.events_per_sec(), 0.0);
        let p = EngineProfile {
            events_processed: 100,
            wall_secs: 0.5,
            ..Default::default()
        };
        assert_eq!(p.events_per_sec(), 200.0);
    }

    #[test]
    fn summary_renders_phases_and_kinds() {
        let p = EngineProfile {
            events_processed: 1000,
            events_scheduled: 1001,
            pop_secs: 0.1,
            dispatch_secs: 0.3,
            sched_secs: 0.05,
            wall_secs: 0.5,
            queue_high_water: 64,
            queue_capacity: 128,
            per_type: vec![("ping", 600), ("pong", 400)],
            peak_rss_bytes: Some(2 * 1024 * 1024),
            ..Default::default()
        };
        let s = p.summary();
        assert!(s.contains("events/sec"));
        assert!(s.contains("ping"));
        assert!(s.contains("pong"));
        assert!(s.contains("2.0 MiB"));
        // Largest count listed first.
        assert!(s.find("ping").unwrap() < s.find("pong").unwrap());
        // A serial profile renders no shard table.
        assert!(!s.contains("shard"));

        // A sharded profile adds the per-shard load rows.
        let p = EngineProfile {
            wall_secs: 2.0,
            rounds: 42,
            shards: vec![
                ShardLoad {
                    shard: 0,
                    events_processed: 900,
                    busy_secs: 1.5,
                    stall_secs: 0.1,
                },
                ShardLoad {
                    shard: 1,
                    events_processed: 100,
                    busy_secs: 0.2,
                    stall_secs: 1.4,
                },
            ],
            ..Default::default()
        };
        let s = p.summary();
        assert!(s.contains("rounds"));
        assert!(s.contains("across 2 shards"));
        assert!(s.contains("shard 0"));
        // shard 0: busy 1.5 of wall 2.0 ⇒ 75% utilization.
        assert!(s.contains("util  75.0%"));
        // shard 1: stalled 1.4 of wall 2.0 ⇒ 70% stall share.
        assert!(s.contains("stall  70.0%"));
    }
}
