//! The event-list simulation engine.
//!
//! The engine is generic over the model's event type. A [`Model`] is a plain
//! mutable state machine; the engine owns the pending-event queue and the
//! clock. Events scheduled for the same instant are delivered in insertion
//! order (FIFO), which makes simulations deterministic and makes causality
//! easy to reason about ("the release I scheduled before the acquire runs
//! first").
//!
//! The queue itself is backend-pluggable (binary heap or calendar queue, see
//! [`crate::queue`]); the engine only ever asks for "the minimum pending
//! event", so the backend choice is invisible here — and provably invisible
//! to simulation output.

use crate::profile::EngineProfile;
use crate::queue::{EventQueue, PopNext, QueueKind, PROFILE_SAMPLE_MASK};
use crate::time::SimTime;

/// A simulation model: the domain state machine driven by the engine.
///
/// `handle` receives one event and may schedule any number of future events
/// through the [`EventQueue`]. Scheduling in the past is a programming error
/// and panics.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// A static label for an event, used by engine telemetry to build
    /// per-event-type counts. The default lumps everything under `"event"`;
    /// models override it to expose their alphabet.
    fn event_label(_event: &Self::Event) -> &'static str {
        "event"
    }
}

/// Outcome of [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// One event was processed.
    Progressed,
    /// The event queue is empty; the simulation is quiescent.
    Exhausted,
    /// The next event lies beyond the requested horizon (clock left unchanged).
    HorizonReached,
}

/// Telemetry snapshot of an engine run (see [`Engine::stats`]).
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Total events processed.
    pub events_processed: u64,
    /// Peak number of pending events, whatever the backend (staged arrivals
    /// included).
    pub queue_high_water: usize,
    /// Allocated capacity of the pending-event backend at snapshot time.
    /// Compare with `queue_high_water` to pre-size future runs of the same
    /// topology via [`Engine::with_capacity`].
    pub queue_capacity: usize,
    /// Wall-clock seconds spent inside `run_until`/`run_to_quiescence`.
    pub wall_secs: f64,
    /// Per-event-type counts (only populated with telemetry enabled; the
    /// labels come from [`Model::event_label`]).
    pub per_type: Vec<(&'static str, u64)>,
}

impl EngineStats {
    /// Events processed per wall-clock second (0 when nothing was timed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The simulation engine: owns the model, the clock, and the event queue.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    events_processed: u64,
    telemetry: bool,
    profiling: bool,
    per_type: Vec<(&'static str, u64)>,
    wall_secs: f64,
    pop_secs: f64,
    dispatch_secs: f64,
    timed_events: u64,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Self::with_queue(model, QueueKind::default(), 1024)
    }

    /// Create an engine whose event queue is pre-sized for `capacity` pending
    /// events, avoiding reallocation churn in large closed-loop models where
    /// the pending-event count scales with the population (e.g. one think
    /// timer per emulated user).
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Self::with_queue(model, QueueKind::default(), capacity)
    }

    /// Create an engine on an explicit queue backend, pre-sized for
    /// `capacity` pending events. Backend choice is a pure performance knob:
    /// both backends pop the identical `(time, seq)` sequence, so results
    /// are bit-identical either way.
    pub fn with_queue(model: M, kind: QueueKind, capacity: usize) -> Self {
        Engine {
            model,
            queue: EventQueue::new_with(kind, capacity),
            events_processed: 0,
            telemetry: false,
            profiling: false,
            per_type: Vec::new(),
            wall_secs: 0.0,
            pop_secs: 0.0,
            dispatch_secs: 0.0,
            timed_events: 0,
        }
    }

    /// Turn on per-event-type counting (one label lookup + linear-scan bump
    /// per event; off by default so untraced runs pay nothing).
    pub fn enable_telemetry(&mut self) {
        self.telemetry = true;
    }

    /// Turn on phase profiling: wall-clock timing of the pop, dispatch, and
    /// schedule phases on a deterministic 1-in-64 sample of event cycles
    /// (scaled to whole-run estimates in [`profile`](Self::profile)), plus
    /// the per-event-type counts of
    /// [`enable_telemetry`](Self::enable_telemetry). Profiling is
    /// passive — it draws no randomness, schedules nothing, and never
    /// touches the model — so a profiled run produces bit-identical
    /// simulation output to an unprofiled one. Off by default; when off, the
    /// hot path pays one untaken branch per event.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
        self.telemetry = true;
        self.queue.set_timed(true);
    }

    /// Snapshot the run's telemetry.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            queue_high_water: self.queue.high_water(),
            queue_capacity: self.queue.capacity(),
            wall_secs: self.wall_secs,
            per_type: self.per_type.clone(),
        }
    }

    /// Snapshot the run's phase-timing profile (meaningful after a run with
    /// [`enable_profiling`](Self::enable_profiling); all phase timers are
    /// zero otherwise). Phase seconds are whole-run estimates: the sampled
    /// sums scaled by the fraction of cycles sampled. Includes a fresh
    /// peak-RSS probe.
    pub fn profile(&self) -> EngineProfile {
        let scale = |sampled_secs: f64, sampled: u64, total: u64| {
            if sampled == 0 {
                0.0
            } else {
                sampled_secs * total as f64 / sampled as f64
            }
        };
        EngineProfile {
            events_processed: self.events_processed,
            events_scheduled: self.queue.scheduled(),
            pop_secs: scale(self.pop_secs, self.timed_events, self.events_processed),
            dispatch_secs: scale(self.dispatch_secs, self.timed_events, self.events_processed),
            sched_secs: scale(
                self.queue.sched_secs(),
                self.queue.timed_pushes(),
                self.queue.scheduled(),
            ),
            wall_secs: self.wall_secs,
            queue_high_water: self.queue.high_water(),
            queue_capacity: self.queue.capacity(),
            per_type: self.per_type.clone(),
            peak_rss_bytes: crate::profile::peak_rss_bytes(),
            rounds: 0,
            shards: Vec::new(),
        }
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for setup and post-run inspection).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event from outside the model (setup code, drivers).
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        self.queue.schedule(at, event);
    }

    /// Access the queue directly (e.g. to seed many initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Process a single event, if one exists at or before `horizon`.
    pub fn step(&mut self, horizon: SimTime) -> StepResult {
        let sample = self.profiling && self.events_processed & PROFILE_SAMPLE_MASK == 0;
        let t0 = sample.then(std::time::Instant::now);
        match self.queue.pop_at_most(horizon) {
            PopNext::Empty => StepResult::Exhausted,
            PopNext::Beyond => StepResult::HorizonReached,
            PopNext::Event(sched) => {
                if self.telemetry {
                    let label = M::event_label(&sched.event);
                    match self.per_type.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, n)) => *n += 1,
                        None => self.per_type.push((label, 1)),
                    }
                }
                let t1 = sample.then(std::time::Instant::now);
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    self.pop_secs += (t1 - t0).as_secs_f64();
                }
                self.model.handle(sched.at, sched.event, &mut self.queue);
                if let Some(t1) = t1 {
                    self.dispatch_secs += t1.elapsed().as_secs_f64();
                    self.timed_events += 1;
                }
                self.events_processed += 1;
                StepResult::Progressed
            }
        }
    }

    /// Run until the queue empties or the clock would pass `until`.
    ///
    /// On return the clock is `min(until, time of last processed event)`; if
    /// the horizon stopped the run, the clock is advanced to `until` so that
    /// subsequent scheduling is relative to the horizon.
    pub fn run_until(&mut self, until: SimTime) {
        let started = std::time::Instant::now();
        loop {
            match self.step(until) {
                StepResult::Progressed => continue,
                StepResult::Exhausted => {
                    self.wall_secs += started.elapsed().as_secs_f64();
                    return;
                }
                StepResult::HorizonReached => break,
            }
        }
        self.wall_secs += started.elapsed().as_secs_f64();
        // Events remain beyond the horizon: advance the clock to the horizon
        // so that subsequent external scheduling is relative to it.
        self.queue.advance_to(until);
    }

    /// Run to quiescence (empty queue). Guards against runaway models with an
    /// event budget; panics if exceeded.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        let started = std::time::Instant::now();
        let start = self.events_processed;
        while let StepResult::Progressed = self.step(SimTime::MAX) {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded event budget of {max_events}"
            );
        }
        self.wall_secs += started.elapsed().as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    /// A toy model that records the order events arrive in.
    struct Recorder {
        seen: Vec<(u64, u32)>,
        chain_remaining: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        Chain,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Tag(id) => self.seen.push((now.as_micros(), id)),
                Ev::Chain => {
                    self.seen.push((now.as_micros(), 999));
                    if self.chain_remaining > 0 {
                        self.chain_remaining -= 1;
                        queue.schedule_after(SimTime::from_micros(10), Ev::Chain);
                    }
                }
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder {
            seen: Vec::new(),
            chain_remaining: 0,
        })
    }

    fn engine_on(kind: QueueKind) -> Engine<Recorder> {
        Engine::with_queue(
            Recorder {
                seen: Vec::new(),
                chain_remaining: 0,
            },
            kind,
            16,
        )
    }

    #[test]
    fn events_pop_in_time_order() {
        for kind in QueueKind::ALL {
            let mut e = engine_on(kind);
            e.schedule(SimTime::from_micros(30), Ev::Tag(3));
            e.schedule(SimTime::from_micros(10), Ev::Tag(1));
            e.schedule(SimTime::from_micros(20), Ev::Tag(2));
            e.run_until(SimTime::MAX);
            assert_eq!(e.model().seen, vec![(10, 1), (20, 2), (30, 3)]);
        }
    }

    #[test]
    fn same_time_events_are_fifo() {
        for kind in QueueKind::ALL {
            let mut e = engine_on(kind);
            for id in 0..100 {
                e.schedule(SimTime::from_micros(5), Ev::Tag(id));
            }
            e.run_until(SimTime::MAX);
            let ids: Vec<u32> = e.model().seen.iter().map(|&(_, id)| id).collect();
            assert_eq!(ids, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        for kind in QueueKind::ALL {
            let mut e = engine_on(kind);
            e.schedule(SimTime::from_micros(10), Ev::Tag(1));
            e.schedule(SimTime::from_micros(100), Ev::Tag(2));
            e.run_until(SimTime::from_micros(50));
            assert_eq!(e.model().seen, vec![(10, 1)]);
            assert_eq!(e.now(), SimTime::from_micros(50));
            // The future event is still pending and runs on the next call.
            e.run_until(SimTime::MAX);
            assert_eq!(e.model().seen.len(), 2);
        }
    }

    #[test]
    fn chained_scheduling_from_inside_handle() {
        let mut e = engine();
        e.model_mut().chain_remaining = 5;
        e.schedule(SimTime::from_micros(0), Ev::Chain);
        e.run_until(SimTime::MAX);
        assert_eq!(e.model().seen.len(), 6);
        assert_eq!(e.now(), SimTime::from_micros(50));
        assert_eq!(e.events_processed(), 6);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        struct M {
            order: Vec<u32>,
        }
        enum E2 {
            First,
            Second,
            Injected,
        }
        impl Model for M {
            type Event = E2;
            fn handle(&mut self, _now: SimTime, ev: E2, q: &mut EventQueue<E2>) {
                match ev {
                    E2::First => {
                        self.order.push(1);
                        q.schedule_now(E2::Injected);
                    }
                    E2::Second => self.order.push(2),
                    E2::Injected => self.order.push(3),
                }
            }
        }
        for kind in QueueKind::ALL {
            let mut e = Engine::with_queue(M { order: vec![] }, kind, 16);
            e.schedule(SimTime::ZERO, E2::First);
            e.schedule(SimTime::ZERO, E2::Second);
            e.run_until(SimTime::MAX);
            // Injected runs after Second (FIFO at the same instant), not before.
            assert_eq!(e.model().order, vec![1, 2, 3]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(10), Ev::Tag(1));
        e.run_until(SimTime::MAX);
        e.schedule(SimTime::from_micros(5), Ev::Tag(2));
    }

    #[test]
    fn run_to_quiescence_respects_budget() {
        let mut e = engine();
        e.model_mut().chain_remaining = 1000;
        e.schedule(SimTime::ZERO, Ev::Chain);
        e.run_to_quiescence(2000);
        assert_eq!(e.model().seen.len(), 1001);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn run_to_quiescence_panics_over_budget() {
        let mut e = engine();
        e.model_mut().chain_remaining = 1000;
        e.schedule(SimTime::ZERO, Ev::Chain);
        e.run_to_quiescence(10);
    }

    #[test]
    fn telemetry_counts_event_types_and_high_water() {
        struct Labeled {
            chain_remaining: u32,
        }
        enum E3 {
            Ping,
            Pong,
        }
        impl Model for Labeled {
            type Event = E3;
            fn handle(&mut self, _now: SimTime, ev: E3, q: &mut EventQueue<E3>) {
                if let E3::Ping = ev {
                    if self.chain_remaining > 0 {
                        self.chain_remaining -= 1;
                        q.schedule_after(SimTime::from_micros(1), E3::Pong);
                        q.schedule_after(SimTime::from_micros(2), E3::Ping);
                    }
                }
            }
            fn event_label(ev: &E3) -> &'static str {
                match ev {
                    E3::Ping => "ping",
                    E3::Pong => "pong",
                }
            }
        }
        let mut e = Engine::new(Labeled { chain_remaining: 5 });
        e.enable_telemetry();
        e.schedule(SimTime::ZERO, E3::Ping);
        e.run_until(SimTime::MAX);
        let stats = e.stats();
        assert_eq!(stats.events_processed, 11);
        assert!(stats.queue_high_water >= 2, "{}", stats.queue_high_water);
        let get = |l: &str| {
            stats
                .per_type
                .iter()
                .find(|(n, _)| *n == l)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("ping"), 6);
        assert_eq!(get("pong"), 5);
        assert!(stats.wall_secs >= 0.0);
    }

    #[test]
    fn profiling_times_phases_without_changing_results() {
        let run = |profiled: bool| {
            let mut e = engine();
            e.model_mut().chain_remaining = 200;
            if profiled {
                e.enable_profiling();
            }
            e.schedule(SimTime::ZERO, Ev::Chain);
            e.schedule(SimTime::from_micros(5), Ev::Tag(7));
            e.run_until(SimTime::MAX);
            let profile = e.profile();
            (e.into_model().seen, profile)
        };
        let (plain_seen, plain_profile) = run(false);
        let (prof_seen, profile) = run(true);
        // Profiling is passive: the event history is identical.
        assert_eq!(plain_seen, prof_seen);
        // Phase timers only accumulate when profiling is on.
        assert_eq!(plain_profile.pop_secs, 0.0);
        assert_eq!(plain_profile.sched_secs, 0.0);
        assert!(profile.pop_secs > 0.0);
        assert!(profile.dispatch_secs > 0.0);
        assert!(profile.sched_secs > 0.0);
        assert_eq!(profile.events_processed, 202);
        assert_eq!(profile.events_scheduled, 202);
        // Profiling implies telemetry: per-kind counts are populated.
        assert!(!profile.per_type.is_empty());
        // Phase seconds are estimates scaled up from 4 sampled cycles — on
        // a run this tiny the clock-read cost of the probes dwarfs the
        // near-empty handlers, so no ratio against wall_secs is meaningful
        // here; finiteness is all that can be asserted at this scale. The
        // realistic-scale coherence bound lives in tests/report.rs.
        assert!(profile.pop_secs.is_finite() && profile.dispatch_secs.is_finite());
        #[cfg(target_os = "linux")]
        assert!(profile.peak_rss_bytes.is_some());
    }

    #[test]
    fn telemetry_off_collects_no_per_type_counts() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(1), Ev::Tag(1));
        e.run_until(SimTime::MAX);
        assert!(e.stats().per_type.is_empty());
        assert_eq!(e.stats().events_processed, 1);
    }

    #[test]
    fn with_capacity_presizes_queue_without_changing_results() {
        // Pinned to the heap backend: its capacity is a pre-allocated slot
        // count, so pre-sizing is directly observable. (The calendar queue
        // sizes its bucket array from occupancy instead.)
        let mut small = engine_on(QueueKind::Heap);
        let mut big = Engine::with_queue(
            Recorder {
                seen: Vec::new(),
                chain_remaining: 0,
            },
            QueueKind::Heap,
            4096,
        );
        assert!(big.queue_mut().capacity() >= 4096);
        for e in [&mut small, &mut big] {
            for id in 0..50 {
                e.schedule(SimTime::from_micros(100 - id as u64), Ev::Tag(id));
            }
            e.run_until(SimTime::MAX);
        }
        assert_eq!(small.model().seen, big.model().seen);
        assert!(big.stats().queue_capacity >= 4096);
        assert_eq!(big.stats().queue_high_water, 50);
    }

    #[test]
    fn reserve_grows_capacity() {
        // Heap backend: reserve pre-allocates slots. (Calendar buckets
        // ignore reserve by design — they size from occupancy.)
        let mut e = engine_on(QueueKind::Heap);
        let before = e.queue_mut().capacity();
        e.queue_mut().reserve(before + 1000);
        assert!(e.queue_mut().capacity() > before);
    }

    #[test]
    fn queue_introspection() {
        let mut e = engine();
        assert!(e.queue_mut().is_empty());
        assert_eq!(e.queue_mut().kind(), QueueKind::default());
        e.schedule(SimTime::from_micros(7), Ev::Tag(0));
        assert_eq!(e.queue_mut().len(), 1);
        assert_eq!(e.queue_mut().peek_time(), Some(SimTime::from_micros(7)));
    }

    /// Staged arrivals flow through a full engine run exactly like pushed
    /// ones: identical event history, counters, and telemetry on both
    /// backends.
    #[test]
    fn staged_arrivals_run_bit_identically_to_pushed_ones() {
        let run = |kind: QueueKind, stage: bool| {
            let mut e = engine_on(kind);
            e.model_mut().chain_remaining = 40;
            let arrivals = [(70u64, 0u32), (10, 1), (10, 2), (35, 3), (0, 4)];
            for &(at, id) in &arrivals {
                if stage {
                    e.queue_mut().stage(SimTime::from_micros(at), Ev::Tag(id));
                } else {
                    e.schedule(SimTime::from_micros(at), Ev::Tag(id));
                }
            }
            // A chain pushed normally, interleaving with staged arrivals.
            e.schedule(SimTime::ZERO, Ev::Chain);
            e.run_until(SimTime::MAX);
            (
                e.model().seen.clone(),
                e.events_processed(),
                e.stats().queue_high_water,
            )
        };
        let baseline = run(QueueKind::Heap, false);
        for kind in QueueKind::ALL {
            assert_eq!(run(kind, true), baseline, "staged run diverged on {kind}");
            assert_eq!(run(kind, false), baseline, "pushed run diverged on {kind}");
        }
    }
}
