//! The event-list simulation engine.
//!
//! The engine is generic over the model's event type. A [`Model`] is a plain
//! mutable state machine; the engine owns the pending-event heap and the clock.
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which makes simulations deterministic and makes causality easy to
//! reason about ("the release I scheduled before the acquire runs first").

use crate::profile::EngineProfile;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation model: the domain state machine driven by the engine.
///
/// `handle` receives one event and may schedule any number of future events
/// through the [`EventQueue`]. Scheduling in the past is a programming error
/// and panics.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// A static label for an event, used by engine telemetry to build
    /// per-event-type counts. The default lumps everything under `"event"`;
    /// models override it to expose their alphabet.
    fn event_label(_event: &Self::Event) -> &'static str {
        "event"
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event;
    /// ties broken by insertion sequence for FIFO same-time delivery.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event set, exposed to models for scheduling.
/// Phase timing samples one event cycle in this many: reading a monotonic
/// clock several times per event costs more than dispatching most events,
/// so timing every cycle would roughly double the event loop's cost. A
/// deterministic 1-in-64 sample keeps the estimates accurate over any
/// realistic run (tens of thousands of sampled cycles) at ~1/64 of the
/// clock-read overhead. The sample is keyed on event/schedule indices —
/// no randomness — so profiling stays bit-identical and repeatable.
const PROFILE_SAMPLE_MASK: u64 = 63;

pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    high_water: usize,
    timed: bool,
    sched_secs: f64,
    timed_pushes: u64,
}

impl<E> EventQueue<E> {
    fn new() -> Self {
        Self::with_capacity(1024)
    }

    fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            now: SimTime::ZERO,
            seq: 0,
            high_water: 0,
            timed: false,
            sched_secs: 0.0,
            timed_pushes: 0,
        }
    }

    /// Push onto the heap, maintaining the insertion sequence and high-water
    /// mark. Timing (when profiling is on) wraps exactly this operation on a
    /// deterministic 1-in-64 sample of pushes, so `sched_secs` holds sampled
    /// heap-push seconds ([`Engine::profile`] scales them to an estimate).
    #[inline]
    fn push_at(&mut self, at: SimTime, event: E) {
        if self.timed && self.seq & PROFILE_SAMPLE_MASK == 0 {
            let t0 = std::time::Instant::now();
            self.heap.push(Scheduled {
                at,
                seq: self.seq,
                event,
            });
            self.sched_secs += t0.elapsed().as_secs_f64();
            self.timed_pushes += 1;
        } else {
            self.heap.push(Scheduled {
                at,
                seq: self.seq,
                event,
            });
        }
        self.seq += 1;
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Reserve room for at least `additional` more pending events.
    ///
    /// Pre-sizing is purely an allocation hint: heap layout never affects pop
    /// order (the schedule is a strict total order on `(time, seq)`), so this
    /// cannot change simulation results.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current allocated capacity of the pending-event heap.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is before the current time.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        self.push_at(at, event);
    }

    /// Schedule `event` after a delay relative to now.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.push_at(self.now + delay, event);
    }

    /// Schedule `event` to run at the current instant, after all events already
    /// queued for this instant (a "call me back immediately" idiom).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_after(SimTime::ZERO, event);
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Largest number of events ever pending at once.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total events ever pushed onto this queue (the insertion sequence).
    #[inline]
    pub fn scheduled(&self) -> u64 {
        self.seq
    }
}

/// Outcome of [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// One event was processed.
    Progressed,
    /// The event queue is empty; the simulation is quiescent.
    Exhausted,
    /// The next event lies beyond the requested horizon (clock left unchanged).
    HorizonReached,
}

/// Telemetry snapshot of an engine run (see [`Engine::stats`]).
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Total events processed.
    pub events_processed: u64,
    /// Peak size of the pending-event heap.
    pub heap_high_water: usize,
    /// Allocated capacity of the pending-event heap at snapshot time. Compare
    /// with `heap_high_water` to pre-size future runs of the same topology
    /// via [`Engine::with_capacity`].
    pub heap_capacity: usize,
    /// Wall-clock seconds spent inside `run_until`/`run_to_quiescence`.
    pub wall_secs: f64,
    /// Per-event-type counts (only populated with telemetry enabled; the
    /// labels come from [`Model::event_label`]).
    pub per_type: Vec<(&'static str, u64)>,
}

impl EngineStats {
    /// Events processed per wall-clock second (0 when nothing was timed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The simulation engine: owns the model, the clock, and the event heap.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    events_processed: u64,
    telemetry: bool,
    profiling: bool,
    per_type: Vec<(&'static str, u64)>,
    wall_secs: f64,
    pop_secs: f64,
    dispatch_secs: f64,
    timed_events: u64,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            events_processed: 0,
            telemetry: false,
            profiling: false,
            per_type: Vec::new(),
            wall_secs: 0.0,
            pop_secs: 0.0,
            dispatch_secs: 0.0,
            timed_events: 0,
        }
    }

    /// Create an engine whose event heap is pre-sized for `capacity` pending
    /// events, avoiding reallocation churn in large closed-loop models where
    /// the pending-event count scales with the population (e.g. one think
    /// timer per emulated user).
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        let mut e = Self::new(model);
        e.queue = EventQueue::with_capacity(capacity);
        e
    }

    /// Turn on per-event-type counting (one label lookup + linear-scan bump
    /// per event; off by default so untraced runs pay nothing).
    pub fn enable_telemetry(&mut self) {
        self.telemetry = true;
    }

    /// Turn on phase profiling: wall-clock timing of the pop, dispatch, and
    /// schedule phases on a deterministic 1-in-64 sample of event cycles
    /// (scaled to whole-run estimates in [`profile`](Self::profile)), plus
    /// the per-event-type counts of
    /// [`enable_telemetry`](Self::enable_telemetry). Profiling is
    /// passive — it draws no randomness, schedules nothing, and never
    /// touches the model — so a profiled run produces bit-identical
    /// simulation output to an unprofiled one. Off by default; when off, the
    /// hot path pays one untaken branch per event.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
        self.telemetry = true;
        self.queue.timed = true;
    }

    /// Snapshot the run's telemetry.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            heap_high_water: self.queue.high_water(),
            heap_capacity: self.queue.capacity(),
            wall_secs: self.wall_secs,
            per_type: self.per_type.clone(),
        }
    }

    /// Snapshot the run's phase-timing profile (meaningful after a run with
    /// [`enable_profiling`](Self::enable_profiling); all phase timers are
    /// zero otherwise). Phase seconds are whole-run estimates: the sampled
    /// sums scaled by the fraction of cycles sampled. Includes a fresh
    /// peak-RSS probe.
    pub fn profile(&self) -> EngineProfile {
        let scale = |sampled_secs: f64, sampled: u64, total: u64| {
            if sampled == 0 {
                0.0
            } else {
                sampled_secs * total as f64 / sampled as f64
            }
        };
        EngineProfile {
            events_processed: self.events_processed,
            events_scheduled: self.queue.scheduled(),
            pop_secs: scale(self.pop_secs, self.timed_events, self.events_processed),
            dispatch_secs: scale(self.dispatch_secs, self.timed_events, self.events_processed),
            sched_secs: scale(
                self.queue.sched_secs,
                self.queue.timed_pushes,
                self.queue.scheduled(),
            ),
            wall_secs: self.wall_secs,
            heap_high_water: self.queue.high_water(),
            heap_capacity: self.queue.capacity(),
            per_type: self.per_type.clone(),
            peak_rss_bytes: crate::profile::peak_rss_bytes(),
        }
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for setup and post-run inspection).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event from outside the model (setup code, drivers).
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        self.queue.schedule(at, event);
    }

    /// Access the queue directly (e.g. to seed many initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Process a single event, if one exists at or before `horizon`.
    pub fn step(&mut self, horizon: SimTime) -> StepResult {
        match self.queue.heap.peek() {
            None => StepResult::Exhausted,
            Some(next) if next.at > horizon => StepResult::HorizonReached,
            Some(_) => {
                let sample = self.profiling && self.events_processed & PROFILE_SAMPLE_MASK == 0;
                let t0 = sample.then(std::time::Instant::now);
                let sched = self.queue.heap.pop().expect("peeked event vanished");
                debug_assert!(
                    sched.at >= self.queue.now,
                    "event queue time went backwards"
                );
                self.queue.now = sched.at;
                if self.telemetry {
                    let label = M::event_label(&sched.event);
                    match self.per_type.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, n)) => *n += 1,
                        None => self.per_type.push((label, 1)),
                    }
                }
                let t1 = sample.then(std::time::Instant::now);
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    self.pop_secs += (t1 - t0).as_secs_f64();
                }
                self.model.handle(sched.at, sched.event, &mut self.queue);
                if let Some(t1) = t1 {
                    self.dispatch_secs += t1.elapsed().as_secs_f64();
                    self.timed_events += 1;
                }
                self.events_processed += 1;
                StepResult::Progressed
            }
        }
    }

    /// Run until the queue empties or the clock would pass `until`.
    ///
    /// On return the clock is `min(until, time of last processed event)`; if
    /// the horizon stopped the run, the clock is advanced to `until` so that
    /// subsequent scheduling is relative to the horizon.
    pub fn run_until(&mut self, until: SimTime) {
        let started = std::time::Instant::now();
        loop {
            match self.step(until) {
                StepResult::Progressed => continue,
                StepResult::Exhausted => {
                    self.wall_secs += started.elapsed().as_secs_f64();
                    return;
                }
                StepResult::HorizonReached => break,
            }
        }
        self.wall_secs += started.elapsed().as_secs_f64();
        // Events remain beyond the horizon: advance the clock to the horizon
        // so that subsequent external scheduling is relative to it.
        if self.queue.now < until {
            self.queue.now = until;
        }
    }

    /// Run to quiescence (empty queue). Guards against runaway models with an
    /// event budget; panics if exceeded.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        let started = std::time::Instant::now();
        let start = self.events_processed;
        while let StepResult::Progressed = self.step(SimTime::MAX) {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded event budget of {max_events}"
            );
        }
        self.wall_secs += started.elapsed().as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model that records the order events arrive in.
    struct Recorder {
        seen: Vec<(u64, u32)>,
        chain_remaining: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        Chain,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Tag(id) => self.seen.push((now.as_micros(), id)),
                Ev::Chain => {
                    self.seen.push((now.as_micros(), 999));
                    if self.chain_remaining > 0 {
                        self.chain_remaining -= 1;
                        queue.schedule_after(SimTime::from_micros(10), Ev::Chain);
                    }
                }
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder {
            seen: Vec::new(),
            chain_remaining: 0,
        })
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(30), Ev::Tag(3));
        e.schedule(SimTime::from_micros(10), Ev::Tag(1));
        e.schedule(SimTime::from_micros(20), Ev::Tag(2));
        e.run_until(SimTime::MAX);
        assert_eq!(e.model().seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut e = engine();
        for id in 0..100 {
            e.schedule(SimTime::from_micros(5), Ev::Tag(id));
        }
        e.run_until(SimTime::MAX);
        let ids: Vec<u32> = e.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(10), Ev::Tag(1));
        e.schedule(SimTime::from_micros(100), Ev::Tag(2));
        e.run_until(SimTime::from_micros(50));
        assert_eq!(e.model().seen, vec![(10, 1)]);
        assert_eq!(e.now(), SimTime::from_micros(50));
        // The future event is still pending and runs on the next call.
        e.run_until(SimTime::MAX);
        assert_eq!(e.model().seen.len(), 2);
    }

    #[test]
    fn chained_scheduling_from_inside_handle() {
        let mut e = engine();
        e.model_mut().chain_remaining = 5;
        e.schedule(SimTime::from_micros(0), Ev::Chain);
        e.run_until(SimTime::MAX);
        assert_eq!(e.model().seen.len(), 6);
        assert_eq!(e.now(), SimTime::from_micros(50));
        assert_eq!(e.events_processed(), 6);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        struct M {
            order: Vec<u32>,
        }
        enum E2 {
            First,
            Second,
            Injected,
        }
        impl Model for M {
            type Event = E2;
            fn handle(&mut self, _now: SimTime, ev: E2, q: &mut EventQueue<E2>) {
                match ev {
                    E2::First => {
                        self.order.push(1);
                        q.schedule_now(E2::Injected);
                    }
                    E2::Second => self.order.push(2),
                    E2::Injected => self.order.push(3),
                }
            }
        }
        let mut e = Engine::new(M { order: vec![] });
        e.schedule(SimTime::ZERO, E2::First);
        e.schedule(SimTime::ZERO, E2::Second);
        e.run_until(SimTime::MAX);
        // Injected runs after Second (FIFO at the same instant), not before.
        assert_eq!(e.model().order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(10), Ev::Tag(1));
        e.run_until(SimTime::MAX);
        e.schedule(SimTime::from_micros(5), Ev::Tag(2));
    }

    #[test]
    fn run_to_quiescence_respects_budget() {
        let mut e = engine();
        e.model_mut().chain_remaining = 1000;
        e.schedule(SimTime::ZERO, Ev::Chain);
        e.run_to_quiescence(2000);
        assert_eq!(e.model().seen.len(), 1001);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn run_to_quiescence_panics_over_budget() {
        let mut e = engine();
        e.model_mut().chain_remaining = 1000;
        e.schedule(SimTime::ZERO, Ev::Chain);
        e.run_to_quiescence(10);
    }

    #[test]
    fn telemetry_counts_event_types_and_high_water() {
        struct Labeled {
            chain_remaining: u32,
        }
        enum E3 {
            Ping,
            Pong,
        }
        impl Model for Labeled {
            type Event = E3;
            fn handle(&mut self, _now: SimTime, ev: E3, q: &mut EventQueue<E3>) {
                if let E3::Ping = ev {
                    if self.chain_remaining > 0 {
                        self.chain_remaining -= 1;
                        q.schedule_after(SimTime::from_micros(1), E3::Pong);
                        q.schedule_after(SimTime::from_micros(2), E3::Ping);
                    }
                }
            }
            fn event_label(ev: &E3) -> &'static str {
                match ev {
                    E3::Ping => "ping",
                    E3::Pong => "pong",
                }
            }
        }
        let mut e = Engine::new(Labeled { chain_remaining: 5 });
        e.enable_telemetry();
        e.schedule(SimTime::ZERO, E3::Ping);
        e.run_until(SimTime::MAX);
        let stats = e.stats();
        assert_eq!(stats.events_processed, 11);
        assert!(stats.heap_high_water >= 2, "{}", stats.heap_high_water);
        let get = |l: &str| {
            stats
                .per_type
                .iter()
                .find(|(n, _)| *n == l)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("ping"), 6);
        assert_eq!(get("pong"), 5);
        assert!(stats.wall_secs >= 0.0);
    }

    #[test]
    fn profiling_times_phases_without_changing_results() {
        let run = |profiled: bool| {
            let mut e = engine();
            e.model_mut().chain_remaining = 200;
            if profiled {
                e.enable_profiling();
            }
            e.schedule(SimTime::ZERO, Ev::Chain);
            e.schedule(SimTime::from_micros(5), Ev::Tag(7));
            e.run_until(SimTime::MAX);
            let profile = e.profile();
            (e.into_model().seen, profile)
        };
        let (plain_seen, plain_profile) = run(false);
        let (prof_seen, profile) = run(true);
        // Profiling is passive: the event history is identical.
        assert_eq!(plain_seen, prof_seen);
        // Phase timers only accumulate when profiling is on.
        assert_eq!(plain_profile.pop_secs, 0.0);
        assert_eq!(plain_profile.sched_secs, 0.0);
        assert!(profile.pop_secs > 0.0);
        assert!(profile.dispatch_secs > 0.0);
        assert!(profile.sched_secs > 0.0);
        assert_eq!(profile.events_processed, 202);
        assert_eq!(profile.events_scheduled, 202);
        // Profiling implies telemetry: per-kind counts are populated.
        assert!(!profile.per_type.is_empty());
        // Phase seconds are estimates scaled up from 4 sampled cycles — on
        // a run this tiny the clock-read cost of the probes dwarfs the
        // near-empty handlers, so no ratio against wall_secs is meaningful
        // here; finiteness is all that can be asserted at this scale. The
        // realistic-scale coherence bound lives in tests/report.rs.
        assert!(profile.pop_secs.is_finite() && profile.dispatch_secs.is_finite());
        #[cfg(target_os = "linux")]
        assert!(profile.peak_rss_bytes.is_some());
    }

    #[test]
    fn telemetry_off_collects_no_per_type_counts() {
        let mut e = engine();
        e.schedule(SimTime::from_micros(1), Ev::Tag(1));
        e.run_until(SimTime::MAX);
        assert!(e.stats().per_type.is_empty());
        assert_eq!(e.stats().events_processed, 1);
    }

    #[test]
    fn with_capacity_presizes_heap_without_changing_results() {
        let mut small = engine();
        let mut big = Engine::with_capacity(
            Recorder {
                seen: Vec::new(),
                chain_remaining: 0,
            },
            4096,
        );
        assert!(big.queue_mut().capacity() >= 4096);
        for e in [&mut small, &mut big] {
            for id in 0..50 {
                e.schedule(SimTime::from_micros(100 - id as u64), Ev::Tag(id));
            }
            e.run_until(SimTime::MAX);
        }
        assert_eq!(small.model().seen, big.model().seen);
        assert!(big.stats().heap_capacity >= 4096);
        assert_eq!(big.stats().heap_high_water, 50);
    }

    #[test]
    fn reserve_grows_capacity() {
        let mut e = engine();
        let before = e.queue_mut().capacity();
        e.queue_mut().reserve(before + 1000);
        assert!(e.queue_mut().capacity() > before);
    }

    #[test]
    fn queue_introspection() {
        let mut e = engine();
        assert!(e.queue_mut().is_empty());
        e.schedule(SimTime::from_micros(7), Ev::Tag(0));
        assert_eq!(e.queue_mut().len(), 1);
        assert_eq!(e.queue_mut().peek_time(), Some(SimTime::from_micros(7)));
    }
}
