//! Conservative parallel execution of **one** simulation across event shards.
//!
//! The classic engine ([`crate::Engine`]) pops a single future-event list in
//! strict `(time, seq)` order. This module runs N lists — one per *shard* of
//! the model — in **barrier rounds** bounded by the minimum cross-shard
//! *lookahead* `L`: if every event a shard sends to another shard arrives at
//! least `L` after the sending event's timestamp, then all events strictly
//! below `min_next_event + L` are causally independent across shards and may
//! execute concurrently. This is textbook conservative DES (Chandy–Misra
//! style synchronization, specialized to a global barrier because tier-chain
//! topologies have only a handful of shards).
//!
//! # Determinism
//!
//! Results are **bit-identical for every worker-thread count**, including
//! one. Three mechanisms make this hold by construction rather than by test:
//!
//! * **Shard-tagged keys.** Every scheduled event carries a `u64` key
//!   `(origin_shard << 56) | counter` drawn from the *sending* shard's own
//!   monotone counter. A destination queue orders its events by
//!   `(time, key)`, so the merge order of events from several shards is a
//!   pure function of the simulation, never of thread interleaving. A
//!   single-shard layout degenerates to `key == counter`, i.e. exactly the
//!   serial engine's insertion sequence.
//! * **Seq-reserving mailboxes.** Cross-shard sends are buffered per
//!   `(source, destination)` pair during a round and drained after the
//!   barrier in source-shard order. Since each message already carries its
//!   key, drain order cannot affect pop order.
//! * **Uniform round decisions.** The only shared decisions — the global
//!   minimum next-event time and the round horizon derived from it — are
//!   reduced at a barrier, so every thread takes the same branch.
//!
//! # Observations
//!
//! Shards may also emit *observations* — passive, order-tolerant payloads
//! (trace spans destined for a recorder on another shard, say) that must not
//! perturb event scheduling. Observations travel in their own mailboxes
//! under a **separate** per-shard counter (so arming them never shifts event
//! keys) and are ingested on the destination shard in `(time, key)` order,
//! but only once they are *safe*: before dispatching an event at time `T`, a
//! shard ingests every pending observation stamped `≤ T − L`. Anything still
//! pending when the run stops is delivered by
//! [`ShardedEngine::finish_observations`].
use crate::engine::EngineStats;
use crate::profile::{peak_rss_bytes, EngineProfile, ShardLoad};
use crate::queue::{EventQueue, PopNext, QueueKind, PROFILE_SAMPLE_MASK};

/// Round-timing sample mask for the *serial* round loop: busy clocks are
/// read on a deterministic 1-in-16 sample of rounds and scaled back up
/// ([`ROUND_SAMPLE_SCALE`]), keeping profiled runs cheap even when a tiny
/// lookahead makes rounds tiny and numerous. Serial per-shard
/// [`ShardLoad`](crate::ShardLoad) figures are therefore estimates, like
/// the engine's pop/dispatch phase timings. The parallel loop times every
/// round instead — see the comment in `run_parallel`.
const ROUND_SAMPLE_MASK: u64 = 15;
/// Scale factor undoing the 1-in-16 round sample.
const ROUND_SAMPLE_SCALE: f64 = (ROUND_SAMPLE_MASK + 1) as f64;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Bits above this position of an event key hold the origin shard id.
pub const SHARD_KEY_BITS: u32 = 56;

/// Per-`(destination, source)` cross-shard mailboxes: slot `dst * n + src`
/// holds keyed messages deposited during a round and drained post-barrier.
type Mailboxes<T> = Vec<Mutex<Vec<(SimTime, u64, T)>>>;

/// Compose the `(origin_shard, counter)` event key (see module docs).
#[inline]
pub fn shard_key(shard: usize, counter: u64) -> u64 {
    debug_assert!(shard < (1 << (64 - SHARD_KEY_BITS)));
    debug_assert!(counter < (1u64 << SHARD_KEY_BITS));
    ((shard as u64) << SHARD_KEY_BITS) | counter
}

/// One shard of a sharded model: a state machine handling its own events and
/// ingesting observations sent by other shards.
///
/// The contract mirrors [`crate::Model`], with two differences: handlers
/// talk to a [`ShardIo`] (which routes local schedules and cross-shard
/// sends), and a shard must tolerate observations arriving *later* than the
/// events around them (they are delivered under the lookahead delay rule).
pub trait ShardModel: Send {
    /// Event payload (shared by all shards of one model).
    type Event: Send;
    /// Observation payload (use `()` when unused).
    type Obs: Send;

    /// Process one event at simulated time `now`.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        io: &mut ShardIo<'_, Self::Event, Self::Obs>,
    );

    /// Ingest one observation stamped `at` (delivered in `(time, key)`
    /// order, before any event at `≥ at + L` dispatches on this shard).
    fn ingest(&mut self, at: SimTime, obs: Self::Obs);

    /// Short static label per event kind (telemetry; mirror of
    /// [`crate::Model::event_label`]).
    fn event_label(event: &Self::Event) -> &'static str;
}

/// Per-round I/O capability handed to [`ShardModel::handle`]: local
/// scheduling, cross-shard sends, and observation emission.
pub struct ShardIo<'a, E, O> {
    shard: usize,
    /// Lower bound every cross-shard send must respect this round
    /// (`round_min + lookahead`).
    send_floor: SimTime,
    queue: &'a mut EventQueue<E>,
    counter: &'a mut u64,
    obs_counter: &'a mut u64,
    outbox: &'a mut [Vec<(SimTime, u64, E)>],
    obs_outbox: &'a mut [Vec<(SimTime, u64, O)>],
}

impl<E, O> ShardIo<'_, E, O> {
    /// Current simulated time on this shard.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// This shard's index.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    #[inline]
    fn next_key(&mut self) -> u64 {
        let k = shard_key(self.shard, *self.counter);
        *self.counter += 1;
        k
    }

    /// Schedule an event on this shard at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let key = self.next_key();
        self.queue.push_keyed(at, key, event);
    }

    /// Schedule on this shard after a delay relative to now.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.queue.now() + delay, event);
    }

    /// Schedule on this shard at the current instant, after everything
    /// already queued for it.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.queue.now(), event);
    }

    /// Send an event to shard `dest` at absolute time `at`. A send to this
    /// shard is an ordinary local schedule; a cross-shard send must respect
    /// the lookahead (`at ≥ round_min + L`), which is what licenses the
    /// round to run shards concurrently in the first place.
    ///
    /// # Panics
    /// If a cross-shard `at` lands inside the current round's horizon.
    #[inline]
    pub fn send(&mut self, dest: usize, at: SimTime, event: E) {
        if dest == self.shard {
            self.schedule(at, event);
            return;
        }
        assert!(
            at >= self.send_floor,
            "cross-shard send below the lookahead horizon: at={at} floor={} (shard {} -> {dest})",
            self.send_floor,
            self.shard
        );
        let key = self.next_key();
        self.outbox[dest].push((at, key, event));
    }

    /// Emit an observation stamped `at` toward shard `dest` (which may be
    /// this shard). Observations use their own key counter, so emitting them
    /// never perturbs event ordering; they are ingested under the delay rule
    /// described in the module docs.
    #[inline]
    pub fn observe(&mut self, dest: usize, at: SimTime, obs: O) {
        let key = shard_key(self.shard, *self.obs_counter);
        *self.obs_counter += 1;
        self.obs_outbox[dest].push((at, key, obs));
    }
}

/// Pending observation, ordered by `(time, key)`.
struct ObsEntry<O> {
    at: SimTime,
    key: u64,
    obs: O,
}

impl<O> PartialEq for ObsEntry<O> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key) == (other.at, other.key)
    }
}
impl<O> Eq for ObsEntry<O> {}
impl<O> PartialOrd for ObsEntry<O> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<O> Ord for ObsEntry<O> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// One shard's execution state: its model, event list, counters, outboxes,
/// and telemetry accumulators.
struct ShardState<M: ShardModel> {
    model: M,
    queue: EventQueue<M::Event>,
    counter: u64,
    obs_counter: u64,
    outbox: Vec<Vec<(SimTime, u64, M::Event)>>,
    obs_outbox: Vec<Vec<(SimTime, u64, M::Obs)>>,
    obs_pending: BinaryHeap<Reverse<ObsEntry<M::Obs>>>,
    events_processed: u64,
    per_type: Vec<(&'static str, u64)>,
    pop_secs: f64,
    dispatch_secs: f64,
    timed_events: u64,
    busy_secs: f64,
    stall_secs: f64,
}

impl<M: ShardModel> ShardState<M> {
    /// Ingest every safe pending observation: all entries stamped `≤ bound`,
    /// in `(time, key)` order.
    fn drain_obs_through(&mut self, bound: SimTime) {
        while let Some(Reverse(top)) = self.obs_pending.peek() {
            if top.at > bound {
                break;
            }
            let Reverse(e) = self.obs_pending.pop().expect("peeked entry vanished");
            self.model.ingest(e.at, e.obs);
        }
    }
}

/// N event queues run in lookahead-bounded barrier rounds — the parallel
/// (and, at one worker, the serial) executor for sharded models.
///
/// Construction fixes the shard layout and the lookahead; the worker-thread
/// count is free to vary per run without changing a single bit of output
/// (see module docs). One worker runs the same round schedule with no
/// synchronization primitives at all.
pub struct ShardedEngine<M: ShardModel> {
    shards: Vec<ShardState<M>>,
    lookahead: SimTime,
    threads: usize,
    now: SimTime,
    telemetry: bool,
    profiling: bool,
    rounds: u64,
    wall_secs: f64,
}

impl<M: ShardModel> ShardedEngine<M> {
    /// Build an engine over `models` (one per shard) with the given
    /// cross-shard lookahead, worker-thread budget, queue backend, and
    /// initial per-shard capacity hint.
    ///
    /// # Panics
    /// If `models` is empty, or if a multi-shard layout comes with a zero
    /// lookahead (callers are expected to collapse such layouts to one
    /// shard — zero lookahead admits no concurrency).
    pub fn new(
        models: Vec<M>,
        lookahead: SimTime,
        threads: usize,
        kind: QueueKind,
        capacity: usize,
    ) -> Self {
        assert!(
            !models.is_empty(),
            "a sharded engine needs at least one shard"
        );
        let n = models.len();
        assert!(
            n == 1 || lookahead > SimTime::ZERO,
            "multi-shard layouts need positive lookahead (got {n} shards, L={lookahead})"
        );
        let shards = models
            .into_iter()
            .map(|model| ShardState {
                model,
                queue: EventQueue::new_with(kind, capacity),
                counter: 0,
                obs_counter: 0,
                outbox: (0..n).map(|_| Vec::new()).collect(),
                obs_outbox: (0..n).map(|_| Vec::new()).collect(),
                obs_pending: BinaryHeap::new(),
                events_processed: 0,
                per_type: Vec::new(),
                pop_secs: 0.0,
                dispatch_secs: 0.0,
                timed_events: 0,
                busy_secs: 0.0,
                stall_secs: 0.0,
            })
            .collect();
        ShardedEngine {
            shards,
            lookahead,
            threads: threads.clamp(1, n),
            now: SimTime::ZERO,
            telemetry: false,
            profiling: false,
            rounds: 0,
            wall_secs: 0.0,
        }
    }

    /// Number of shards in the layout.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the run loop will use (clamped to the shard count).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cross-shard lookahead the rounds are bounded by.
    #[inline]
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Current simulated time (the completed horizon).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Barrier rounds executed so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Turn on per-event-kind counting (the sharded mirror of
    /// [`crate::Engine::enable_telemetry`]).
    pub fn enable_telemetry(&mut self) {
        self.telemetry = true;
    }

    /// Turn on phase profiling: sampled pop/dispatch/push timings per shard
    /// plus round-level busy/stall attribution. Passive — output is
    /// bit-identical to an unprofiled run.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
        self.telemetry = true;
        for s in &mut self.shards {
            s.queue.set_timed(true);
        }
    }

    /// Borrow shard `i`'s model.
    pub fn model(&self, i: usize) -> &M {
        &self.shards[i].model
    }

    /// Mutably borrow shard `i`'s model.
    pub fn model_mut(&mut self, i: usize) -> &mut M {
        &mut self.shards[i].model
    }

    /// Consume the engine, returning every shard's model in shard order.
    pub fn into_models(self) -> Vec<M> {
        self.shards.into_iter().map(|s| s.model).collect()
    }

    /// Schedule a seed event on shard `shard` (keyed from that shard's own
    /// counter, exactly as if the shard had scheduled it itself).
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: M::Event) {
        let s = &mut self.shards[shard];
        let key = shard_key(shard, s.counter);
        s.counter += 1;
        s.queue.push_keyed(at, key, event);
    }

    /// Stage a pre-run seed event on shard `shard` through the queue's
    /// staged-arrivals lane (bulk seeding; same key space as
    /// [`schedule`](Self::schedule)).
    pub fn stage(&mut self, shard: usize, at: SimTime, event: M::Event) {
        let s = &mut self.shards[shard];
        let key = shard_key(shard, s.counter);
        s.counter += 1;
        s.queue.stage_keyed(at, key, event);
    }

    /// Pre-size shard `shard`'s event list for `additional` more events.
    pub fn reserve(&mut self, shard: usize, additional: usize) {
        self.shards[shard].queue.reserve(additional);
    }

    /// Run until simulated time `until` (inclusive), then advance every
    /// shard's clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.run(until, None);
        for s in &mut self.shards {
            s.queue.advance_to(until);
        }
        self.now = self.now.max(until);
    }

    /// Run until every shard's event list is empty.
    ///
    /// # Panics
    /// If more than `max_events` are processed (runaway guard, mirroring
    /// [`crate::Engine::run_to_quiescence`]).
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        self.run(SimTime::MAX, Some(max_events));
    }

    /// Deliver every still-pending observation (in `(time, key)` order per
    /// shard). Call after the final `run_*` and before tearing the models
    /// down: observations are delivered lazily under the lookahead rule, so
    /// the tail emitted near the end of a run is still in flight.
    pub fn finish_observations(&mut self) {
        for s in &mut self.shards {
            s.drain_obs_through(SimTime::MAX);
        }
    }

    /// Merged engine telemetry: event counts and push totals summed across
    /// shards, queue high-water the **maximum** of any one shard (capacity
    /// planning reads it as "largest single event list"), capacity summed.
    pub fn stats(&self) -> EngineStats {
        let mut per_type: Vec<(&'static str, u64)> = Vec::new();
        for s in &self.shards {
            for &(label, n) in &s.per_type {
                match per_type.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, total)) => *total += n,
                    None => per_type.push((label, n)),
                }
            }
        }
        EngineStats {
            events_processed: self.events_processed(),
            queue_high_water: self
                .shards
                .iter()
                .map(|s| s.queue.high_water())
                .max()
                .unwrap_or(0),
            queue_capacity: self.shards.iter().map(|s| s.queue.capacity()).sum(),
            wall_secs: self.wall_secs,
            per_type,
        }
    }

    /// One shard's own telemetry view (unmerged).
    pub fn shard_stats(&self, i: usize) -> EngineStats {
        let s = &self.shards[i];
        EngineStats {
            events_processed: s.events_processed,
            queue_high_water: s.queue.high_water(),
            queue_capacity: s.queue.capacity(),
            wall_secs: self.wall_secs,
            per_type: s.per_type.clone(),
        }
    }

    /// Merged phase profile: sampled phase seconds are scaled per shard
    /// (exactly as the serial engine scales its own sample) and then summed,
    /// so `pop+dispatch` seconds can legitimately exceed wall seconds once
    /// shards actually overlap. Per-shard busy/stall attribution rides in
    /// [`EngineProfile::shards`].
    pub fn profile(&self) -> EngineProfile {
        let stats = self.stats();
        let mut pop = 0.0;
        let mut dispatch = 0.0;
        let mut sched = 0.0;
        let mut scheduled = 0;
        for s in &self.shards {
            if s.timed_events > 0 {
                let scale = s.events_processed as f64 / s.timed_events as f64;
                pop += s.pop_secs * scale;
                dispatch += s.dispatch_secs * scale;
            }
            if s.queue.timed_pushes() > 0 {
                let scale = s.counter as f64 / s.queue.timed_pushes() as f64;
                sched += s.queue.sched_secs() * scale;
            }
            scheduled += s.counter;
        }
        EngineProfile {
            events_processed: stats.events_processed,
            events_scheduled: scheduled,
            pop_secs: pop,
            dispatch_secs: dispatch,
            sched_secs: sched,
            wall_secs: self.wall_secs,
            queue_high_water: stats.queue_high_water,
            queue_capacity: stats.queue_capacity,
            per_type: stats.per_type,
            peak_rss_bytes: peak_rss_bytes(),
            rounds: self.rounds,
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardLoad {
                    shard: i,
                    events_processed: s.events_processed,
                    busy_secs: s.busy_secs,
                    stall_secs: s.stall_secs,
                })
                .collect(),
        }
    }

    /// Global minimum next-event time across all shards.
    fn global_min(&self) -> SimTime {
        self.shards
            .iter()
            .filter_map(|s| s.queue.peek_time())
            .min()
            .unwrap_or(SimTime::MAX)
    }

    fn run(&mut self, until: SimTime, budget: Option<u64>) {
        let t0 = std::time::Instant::now();
        if self.threads <= 1 || self.shards.len() == 1 {
            self.run_serial(until, budget);
        } else {
            self.run_parallel(until, budget);
        }
        self.wall_secs += t0.elapsed().as_secs_f64();
    }

    /// One-worker round loop: the same round schedule as the parallel path,
    /// with no synchronization primitives.
    fn run_serial(&mut self, until: SimTime, budget: Option<u64>) {
        let n = self.shards.len();
        let lookahead = self.lookahead;
        let telemetry = self.telemetry;
        let profiling = self.profiling;
        let start_events = self.events_processed();
        loop {
            let m = self.global_min();
            if m == SimTime::MAX || (budget.is_none() && m > until) {
                break;
            }
            let (horizon, floor) = round_bounds(m, lookahead, until, n);
            // Like the pop/dispatch phases, round timing is estimated from a
            // deterministic 1-in-16 sample of rounds (scaled back up), so
            // profiling stays cheap when the lookahead makes rounds tiny.
            let sample = profiling && self.rounds & ROUND_SAMPLE_MASK == 0;
            for i in 0..n {
                let s = &mut self.shards[i];
                let t0 = sample.then(std::time::Instant::now);
                run_shard_round(s, i, horizon, floor, lookahead, telemetry, profiling);
                if let Some(t0) = t0 {
                    s.busy_secs += t0.elapsed().as_secs_f64() * ROUND_SAMPLE_SCALE;
                }
            }
            // Mailbox drain, in (destination, source) order. Order cannot
            // matter — every message carries its key — but keeping it fixed
            // keeps the loop boring.
            for dst in 0..n {
                for src in 0..n {
                    if src == dst {
                        continue;
                    }
                    let (s_src, s_dst) = two_shards(&mut self.shards, src, dst);
                    for (at, key, ev) in s_src.outbox[dst].drain(..) {
                        s_dst.queue.push_keyed(at, key, ev);
                    }
                    for (at, key, obs) in s_src.obs_outbox[dst].drain(..) {
                        s_dst.obs_pending.push(Reverse(ObsEntry { at, key, obs }));
                    }
                }
                let s = &mut self.shards[dst];
                for (at, key, obs) in std::mem::take(&mut s.obs_outbox[dst]) {
                    s.obs_pending.push(Reverse(ObsEntry { at, key, obs }));
                }
            }
            self.rounds += 1;
            if let Some(max) = budget {
                assert!(
                    self.events_processed() - start_events <= max,
                    "run_to_quiescence exceeded {max} events"
                );
            }
        }
    }

    /// Multi-worker round loop. Thread `j` owns a contiguous chunk of
    /// shards; two barriers per round separate the min-reduction, the
    /// processing phase, and the mailbox drain. Every decision taken by a
    /// thread depends only on barrier-published values, so all threads agree
    /// on every round's horizon and on termination.
    fn run_parallel(&mut self, until: SimTime, budget: Option<u64>) {
        let n = self.shards.len();
        let threads = self.threads.min(n);
        let lookahead = self.lookahead;
        let telemetry = self.telemetry;
        let profiling = self.profiling;
        let chunk = n.div_ceil(threads);
        // Chunked ownership can need fewer threads than requested (e.g. 4
        // shards over 3 threads → two chunks of 2).
        let threads = n.div_ceil(chunk);
        let barrier = Barrier::new(threads);
        // Double-buffered min reduction: round r reduces into `mins[r % 2]`
        // while the barrier leader re-arms the other slot for round r + 1.
        let mins = [Mutex::new(SimTime::MAX), Mutex::new(SimTime::MAX)];
        {
            let mut m0 = mins[0].lock().expect("min slot poisoned");
            *m0 = SimTime::MAX;
        }
        // Mailboxes: slot [dst * n + src] is written only by the thread
        // owning `src` during a round and read only by the thread owning
        // `dst` after the barrier, so every lock is uncontended.
        let event_mail: Mailboxes<M::Event> = (0..n * n).map(|_| Mutex::new(Vec::new())).collect();
        let obs_mail: Mailboxes<M::Obs> = (0..n * n).map(|_| Mutex::new(Vec::new())).collect();
        let total_events = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let mut chunks: Vec<&mut [ShardState<M>]> = self.shards.chunks_mut(chunk).collect();
            debug_assert_eq!(chunks.len(), threads);
            let mut handles = Vec::new();
            for (j, own) in chunks.drain(..).enumerate() {
                let barrier = &barrier;
                let mins = &mins;
                let event_mail = &event_mail;
                let obs_mail = &obs_mail;
                let total_events = &total_events;
                let rounds = &rounds;
                let mut body = move || {
                    let base = j * chunk;
                    let mut round: u64 = 0;
                    loop {
                        // Phase 1: reduce the global minimum next-event time.
                        let local_min = own
                            .iter()
                            .filter_map(|s| s.queue.peek_time())
                            .min()
                            .unwrap_or(SimTime::MAX);
                        {
                            let mut g = mins[(round % 2) as usize]
                                .lock()
                                .expect("min slot poisoned");
                            if local_min < *g {
                                *g = local_min;
                            }
                        }
                        // Unlike the serial path, parallel round timing is
                        // NOT sampled: barrier waits dominate a parallel
                        // round, so whole-round clock reads are relatively
                        // cheap — and on an oversubscribed host a sampled
                        // round's clock span includes other threads'
                        // timeslices, which the sampling scale would amplify
                        // into fabricated >100% utilization. Timing every
                        // round lets preemption noise average out instead.
                        let t_wait = profiling.then(std::time::Instant::now);
                        let leader = barrier.wait().is_leader();
                        let stall_a = t_wait.map_or(0.0, |t| t.elapsed().as_secs_f64());
                        let m = *mins[(round % 2) as usize]
                            .lock()
                            .expect("min slot poisoned");
                        if leader {
                            *mins[((round + 1) % 2) as usize]
                                .lock()
                                .expect("min slot poisoned") = SimTime::MAX;
                        }
                        if m == SimTime::MAX || (budget.is_none() && m > until) {
                            break;
                        }
                        // Phase 2: process this round on owned shards and
                        // deposit cross-shard messages.
                        let (horizon, floor) = round_bounds(m, lookahead, until, n);
                        let mut processed: u64 = 0;
                        for (k, s) in own.iter_mut().enumerate() {
                            let src = base + k;
                            let t0 = profiling.then(std::time::Instant::now);
                            processed += run_shard_round(
                                s, src, horizon, floor, lookahead, telemetry, profiling,
                            );
                            if let Some(t0) = t0 {
                                s.busy_secs += t0.elapsed().as_secs_f64();
                            }
                            for dst in 0..n {
                                if dst == src {
                                    for e in std::mem::take(&mut s.obs_outbox[dst]) {
                                        s.obs_pending.push(Reverse(ObsEntry {
                                            at: e.0,
                                            key: e.1,
                                            obs: e.2,
                                        }));
                                    }
                                    continue;
                                }
                                if !s.outbox[dst].is_empty() {
                                    event_mail[dst * n + src]
                                        .lock()
                                        .expect("mailbox poisoned")
                                        .append(&mut s.outbox[dst]);
                                }
                                if !s.obs_outbox[dst].is_empty() {
                                    obs_mail[dst * n + src]
                                        .lock()
                                        .expect("mailbox poisoned")
                                        .append(&mut s.obs_outbox[dst]);
                                }
                            }
                        }
                        if budget.is_some() {
                            total_events.fetch_add(processed, Ordering::Relaxed);
                        }
                        let t_wait = profiling.then(std::time::Instant::now);
                        barrier.wait();
                        let stall_b = t_wait.map_or(0.0, |t| t.elapsed().as_secs_f64());
                        if profiling {
                            // Thread-level stall, attributed evenly across the
                            // thread's shards (1:1 in the common layouts).
                            let share = (stall_a + stall_b) / own.len() as f64;
                            for s in own.iter_mut() {
                                s.stall_secs += share;
                            }
                        }
                        // Phase 3: drain incoming mailboxes on owned shards.
                        for (k, s) in own.iter_mut().enumerate() {
                            let dst = base + k;
                            for src in 0..n {
                                if src == dst {
                                    continue;
                                }
                                let mut mail =
                                    event_mail[dst * n + src].lock().expect("mailbox poisoned");
                                for (at, key, ev) in mail.drain(..) {
                                    s.queue.push_keyed(at, key, ev);
                                }
                                drop(mail);
                                let mut mail =
                                    obs_mail[dst * n + src].lock().expect("mailbox poisoned");
                                for (at, key, obs) in mail.drain(..) {
                                    s.obs_pending.push(Reverse(ObsEntry { at, key, obs }));
                                }
                            }
                        }
                        round += 1;
                        if let Some(max) = budget {
                            // The total is published before barrier B, so
                            // after it every thread sees the same value and
                            // panics (or not) in unison.
                            assert!(
                                total_events.load(Ordering::Relaxed) <= max,
                                "run_to_quiescence exceeded {max} events"
                            );
                        }
                    }
                    // Every thread exits with the identical round count.
                    rounds.fetch_max(round, Ordering::Relaxed);
                };
                if j == threads - 1 {
                    // Run the last chunk on the calling thread.
                    body();
                } else {
                    handles.push(scope.spawn(body));
                }
            }
            for h in handles {
                h.join().expect("worker thread panicked");
            }
        });
        self.rounds += rounds.load(Ordering::Relaxed);
    }
}

/// Disjoint mutable borrows of two distinct shards.
fn two_shards<M: ShardModel>(
    shards: &mut [ShardState<M>],
    a: usize,
    b: usize,
) -> (&mut ShardState<M>, &mut ShardState<M>) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = shards.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// The round's inclusive pop horizon and the cross-shard send floor derived
/// from the global minimum `m`: events with `t ≤ min(m + L − 1, until)` run,
/// and every cross-shard send must land at `≥ m + L`. A single-shard layout
/// has no cross-shard constraint and runs straight to `until`.
fn round_bounds(
    m: SimTime,
    lookahead: SimTime,
    until: SimTime,
    n_shards: usize,
) -> (SimTime, SimTime) {
    if n_shards == 1 {
        return (until, SimTime::ZERO);
    }
    let floor = SimTime(m.0.saturating_add(lookahead.0));
    let horizon = SimTime(floor.0.saturating_sub(1)).min(until);
    (horizon, floor)
}

/// Process every event with `t ≤ horizon` on one shard, ingesting pending
/// observations under the delay rule before each dispatch. Returns the
/// number of events processed.
fn run_shard_round<M: ShardModel>(
    s: &mut ShardState<M>,
    shard: usize,
    horizon: SimTime,
    floor: SimTime,
    lookahead: SimTime,
    telemetry: bool,
    profiling: bool,
) -> u64 {
    let mut processed: u64 = 0;
    loop {
        let sample = profiling && s.events_processed & PROFILE_SAMPLE_MASK == 0;
        let t0 = sample.then(std::time::Instant::now);
        let item = match s.queue.pop_at_most(horizon) {
            PopNext::Event(item) => item,
            PopNext::Empty | PopNext::Beyond => break,
        };
        if let Some(t0) = t0 {
            s.pop_secs += t0.elapsed().as_secs_f64();
        }
        // Observation safety: everything stamped ≤ now − L is final (no
        // shard can still emit below that), so deliver it before the event.
        if !s.obs_pending.is_empty() {
            s.drain_obs_through(item.at.saturating_sub(lookahead));
        }
        if telemetry {
            let label = M::event_label(&item.event);
            match s.per_type.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => s.per_type.push((label, 1)),
            }
        }
        let t0 = sample.then(std::time::Instant::now);
        {
            let mut io = ShardIo {
                shard,
                send_floor: floor,
                queue: &mut s.queue,
                counter: &mut s.counter,
                obs_counter: &mut s.obs_counter,
                outbox: &mut s.outbox,
                obs_outbox: &mut s.obs_outbox,
            };
            s.model.handle(item.at, item.event, &mut io);
        }
        if let Some(t0) = t0 {
            s.dispatch_secs += t0.elapsed().as_secs_f64();
            s.timed_events += 1;
        }
        s.events_processed += 1;
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Model};
    use crate::queue::QueueKind;

    const HOP: SimTime = SimTime(10);

    /// Toy workload on a ring of shards: every shard locally "works" each
    /// token twice, then passes it to the next shard after `HOP`; each
    /// handled event also emits an observation toward shard 0.
    #[derive(Debug, Clone, PartialEq)]
    enum Tok {
        Work(u32),
        Pass(u32),
    }

    struct RingShard {
        n: usize,
        hops_left: u32,
        log: Vec<(u64, u32)>,
        obs: Vec<(u64, u32)>,
    }

    impl RingShard {
        fn new(n: usize, hops_left: u32) -> Self {
            RingShard {
                n,
                hops_left,
                log: Vec::new(),
                obs: Vec::new(),
            }
        }
    }

    impl ShardModel for RingShard {
        type Event = Tok;
        type Obs = u32;

        fn handle(&mut self, now: SimTime, ev: Tok, io: &mut ShardIo<'_, Tok, u32>) {
            match ev {
                Tok::Work(x) => {
                    self.log.push((now.0, x));
                    io.observe(0, now, x);
                }
                Tok::Pass(x) => {
                    self.log.push((now.0, 1000 + x));
                    io.observe(0, now, 1000 + x);
                    // Two local follow-ups land before the pass-on.
                    io.schedule(now + SimTime(1), Tok::Work(x));
                    io.schedule_after(SimTime(2), Tok::Work(x + 1));
                    if x < self.hops_left {
                        let dest = (io.shard() + 1) % self.n;
                        io.send(dest, now + HOP, Tok::Pass(x + 1));
                    }
                }
            }
        }

        fn ingest(&mut self, at: SimTime, obs: u32) {
            self.obs.push((at.0, obs));
        }

        fn event_label(ev: &Tok) -> &'static str {
            match ev {
                Tok::Work(_) => "work",
                Tok::Pass(_) => "pass",
            }
        }
    }

    fn ring(n: usize, threads: usize) -> ShardedEngine<RingShard> {
        let models = (0..n).map(|_| RingShard::new(n, 40)).collect();
        let mut eng = ShardedEngine::new(models, HOP, threads, QueueKind::Heap, 16);
        eng.enable_telemetry();
        eng.schedule(0, SimTime(5), Tok::Pass(0));
        eng.schedule(1, SimTime(7), Tok::Pass(20));
        eng
    }

    fn logs(eng: &ShardedEngine<RingShard>) -> Vec<Vec<(u64, u32)>> {
        (0..eng.n_shards())
            .map(|i| eng.model(i).log.clone())
            .collect()
    }

    #[test]
    fn multi_shard_runs_are_thread_count_invariant() {
        let mut a = ring(3, 1);
        a.run_to_quiescence(100_000);
        a.finish_observations();
        let mut b = ring(3, 3);
        b.run_to_quiescence(100_000);
        b.finish_observations();
        assert_eq!(a.events_processed(), b.events_processed());
        assert!(a.events_processed() > 100);
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(logs(&a), logs(&b));
        // Observations ingested on shard 0 in identical order, too.
        assert_eq!(a.model(0).obs, b.model(0).obs);
        // And the merged stats agree.
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.events_processed, sb.events_processed);
        assert_eq!(sa.per_type, sb.per_type);
    }

    #[test]
    fn observations_arrive_in_time_key_order_and_completely() {
        let mut eng = ring(4, 2);
        eng.run_to_quiescence(100_000);
        eng.finish_observations();
        let obs = &eng.model(0).obs;
        // Every handled event emitted exactly one observation to shard 0.
        assert_eq!(obs.len() as u64, eng.events_processed());
        // Ordered by time (ties broken by origin-shard key, which the
        // payload does not expose; time monotonicity is the visible half).
        assert!(obs.windows(2).all(|w| w[0].0 <= w[1].0), "obs out of order");
    }

    #[test]
    fn single_shard_matches_serial_engine_bit_for_bit() {
        // The same ring logic on the classic engine, one queue.
        struct Solo(RingShard);
        impl Model for Solo {
            type Event = Tok;
            fn handle(&mut self, now: SimTime, ev: Tok, q: &mut EventQueue<Tok>) {
                match ev {
                    Tok::Work(x) => self.0.log.push((now.0, x)),
                    Tok::Pass(x) => {
                        self.0.log.push((now.0, 1000 + x));
                        q.schedule(now + SimTime(1), Tok::Work(x));
                        q.schedule(now + SimTime(2), Tok::Work(x + 1));
                        if x < self.0.hops_left {
                            q.schedule(now + HOP, Tok::Pass(x + 1));
                        }
                    }
                }
            }
            fn event_label(_: &Tok) -> &'static str {
                "tok"
            }
        }
        let mut serial = Engine::new(Solo(RingShard::new(1, 40)));
        serial.schedule(SimTime(5), Tok::Pass(0));
        serial.schedule(SimTime(7), Tok::Pass(20));
        serial.run_to_quiescence(100_000);

        let models = vec![RingShard::new(1, 40)];
        let mut sharded = ShardedEngine::new(models, SimTime::ZERO, 1, QueueKind::Calendar, 16);
        sharded.schedule(0, SimTime(5), Tok::Pass(0));
        sharded.schedule(0, SimTime(7), Tok::Pass(20));
        sharded.run_to_quiescence(100_000);
        assert_eq!(serial.events_processed(), sharded.events_processed());
        assert_eq!(serial.model().0.log, sharded.model(0).log);
    }

    #[test]
    fn run_until_processes_inclusive_and_advances_clock() {
        let mut eng = ring(2, 1);
        eng.run_until(SimTime(5));
        // The seed at t=5 ran; the one at t=7 did not.
        assert_eq!(eng.model(0).log, vec![(5, 1000)]);
        assert!(eng.model(1).log.is_empty());
        assert_eq!(eng.now(), SimTime(5));
        eng.run_until(SimTime(1_000_000));
        assert!(eng.events_processed() > 100);
    }

    #[test]
    #[should_panic(expected = "cross-shard send below the lookahead horizon")]
    fn lookahead_violation_is_caught() {
        struct Cheater;
        impl ShardModel for Cheater {
            type Event = u8;
            type Obs = ();
            fn handle(&mut self, now: SimTime, _: u8, io: &mut ShardIo<'_, u8, ()>) {
                io.send(1, now + SimTime(1), 0); // below L = 10
            }
            fn ingest(&mut self, _: SimTime, _: ()) {}
            fn event_label(_: &u8) -> &'static str {
                "cheat"
            }
        }
        let mut eng = ShardedEngine::new(vec![Cheater, Cheater], HOP, 1, QueueKind::Heap, 4);
        eng.schedule(0, SimTime(3), 0);
        eng.run_to_quiescence(10);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn quiescence_budget_guards_runaways() {
        let mut eng = ring(3, 1);
        eng.run_to_quiescence(10);
    }

    #[test]
    fn merged_stats_and_profile_are_coherent() {
        let mut eng = ring(3, 3);
        eng.enable_profiling();
        eng.run_to_quiescence(100_000);
        let stats = eng.stats();
        let per_shard: u64 = (0..3).map(|i| eng.shard_stats(i).events_processed).sum();
        assert_eq!(stats.events_processed, per_shard);
        let hw = (0..3)
            .map(|i| eng.shard_stats(i).queue_high_water)
            .max()
            .unwrap();
        assert_eq!(stats.queue_high_water, hw);
        let p = eng.profile();
        assert_eq!(p.events_processed, stats.events_processed);
        assert_eq!(p.shards.len(), 3);
        assert_eq!(p.rounds, eng.rounds());
        assert!(p.rounds > 0);
        let shard_events: u64 = p.shards.iter().map(|s| s.events_processed).sum();
        assert_eq!(shard_events, p.events_processed);
        // per-type totals survive the merge.
        let typed: u64 = p.per_type.iter().map(|(_, n)| n).sum();
        assert_eq!(typed, p.events_processed);
    }

    #[test]
    fn keyed_pushes_order_by_time_then_key() {
        let mut q: EventQueue<u32> = EventQueue::new_with(QueueKind::Heap, 4);
        q.push_keyed(SimTime(5), shard_key(1, 0), 10);
        q.push_keyed(SimTime(5), shard_key(0, 7), 20);
        q.push_keyed(SimTime(3), shard_key(2, 1), 30);
        q.stage_keyed(SimTime(5), shard_key(0, 2), 40);
        let mut order = Vec::new();
        while let PopNext::Event(e) = q.pop_at_most(SimTime::MAX) {
            order.push(e.event);
        }
        assert_eq!(order, vec![30, 40, 20, 10]);
    }
}
